//! DSMatrix implementation.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;
use std::sync::Arc;

use fsm_storage::{
    scan_segment_files, BitVec, BudgetGovernor, BudgetLease, CaptureStats, Checkpoint,
    CheckpointRow, CheckpointSegment, Hibernation, HibernationRow, HibernationSegment,
    MemoryTracker, SegmentedWindowStore, StorageBackend, Wal,
};
use fsm_stream::{SlideOutcome, SlidingWindow, WindowConfig};
use fsm_types::{Batch, BatchId, EdgeId, FsmError, Result, Support, Transaction};

use crate::durable::{decode_batch, encode_batch, DurabilityConfig, DurableState, RecoveryReport};
use crate::epoch::EpochSnapshot;
use crate::snapshot::{ProjectedRows, RowSnapshot};
use crate::view::{MixedRow, WindowView};

const WORD_BITS: usize = 64;

/// 64-bit words a flat materialisation of `bits` bits occupies — the one
/// unit every `words_assembled` increment uses (`read-side` counters count
/// payload words only, no serialisation headers; the write-side
/// [`CaptureStats`] counts headers because they are physically written).
fn words_of(bits: usize) -> u64 {
    bits.div_ceil(WORD_BITS) as u64
}

/// Cumulative read-path cost counters of a [`DsMatrix`].
///
/// The incremental-capture story of PR 2 measured *writes*
/// ([`CaptureStats`]); these counters measure *reads* the same way, so the
/// read-amplification section of `exp3_runtime` reports measured words, not
/// a model.  Differencing `words_assembled` across a mine call gives the
/// exact number of words the read path had to materialise for it — zero in
/// the steady state on the memory backend, where [`DsMatrix::view`] borrows
/// the incrementally-maintained row cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// 64-bit words copied into flat rows by eager reads
    /// ([`DsMatrix::row`], [`DsMatrix::snapshot`], the disk-backend fallback
    /// of [`DsMatrix::view`]).
    pub words_assembled: u64,
    /// Flat rows materialised by those eager reads.
    pub rows_assembled: u64,
    /// Words spliced into the incremental row cache at ingest time (cost
    /// proportional to the rows the batch touches).
    pub cache_splice_words: u64,
    /// Words moved by the amortised [`BitVec::drop_prefix`] compaction of the
    /// row cache's dead prefix.
    pub cache_compact_words: u64,
    /// Disk pages the chunk-read path fetched (disk backends only; zero on
    /// the memory backend, whose chunks are borrowed).  With a chunk-cache
    /// budget covering the touched working set, the per-mine delta drops to
    /// the chunks the preceding slide invalidated.
    pub pages_read: u64,
    /// Chunk reads served by the budgeted decoded-chunk cache
    /// ([`fsm_storage::ChunkCache`]) instead of the paged file.
    pub cache_hits: u64,
    /// Disk-backend view rows served straight from pinned cache chunks —
    /// rows that paid **zero** assembly ([`DsMatrix::view`]'s pinned path).
    /// Always zero on the memory backend (its rows are borrowed flat) and at
    /// budget 0 (every row takes the eager fallback).
    pub rows_pinned: u64,
    /// Bytes appended to the write-ahead log (durable windows only; always
    /// zero otherwise — the memory backend pays nothing for durability it
    /// does not have).
    pub wal_bytes_written: u64,
    /// `fsync` system calls issued by WAL commits, segment syncs and
    /// checkpoint writes (durable windows only).
    pub fsyncs: u64,
    /// Bytes of checkpoint files written (durable windows only).
    pub checkpoint_bytes: u64,
    /// Batches replayed from the WAL tail by [`DsMatrix::recover`] (zero for
    /// a matrix that never recovered).
    pub recovery_replayed_batches: u64,
}

/// The incrementally-maintained flat-row cache behind [`DsMatrix::view`].
///
/// Invariants (memory backend): `rows[i]` holds item `i`'s window bits at
/// positions `[offset, offset + k)` for some `k <= num_cols` (missing tail
/// bits read as zero), and every bit below `offset` is zero.  A slide zeroes
/// the evicted chunk in place and grows `offset` (lazy eviction); the entering
/// chunk is spliced onto the touched rows only.  The physical dead prefix is
/// compacted with [`BitVec::drop_prefix`] once it outgrows the live window,
/// which keeps the amortised per-slide maintenance cost proportional to the
/// rows the slide touches.
#[derive(Default)]
struct RowCache {
    rows: Vec<BitVec>,
    /// Dead (all-zero) bits at the front of every cached row.
    offset: usize,
    /// `false` on the disk backends: the cache is then only a scratch target
    /// for the eager [`DsMatrix::view`] fallback, never maintained at ingest.
    enabled: bool,
    /// Store generation the cached rows reflect (see
    /// [`fsm_storage::SegmentedWindowStore::generation`]).
    generation: u64,
}

/// Construction options for a [`DsMatrix`].
#[derive(Debug, Clone, Default)]
pub struct DsMatrixConfig {
    /// Sliding-window configuration (`w` batches).
    pub window: WindowConfig,
    /// Where the rows are stored.
    pub backend: StorageBackend,
    /// Expected number of domain edges (rows); the matrix grows beyond this
    /// if a later batch introduces new edges.
    pub expected_edges: usize,
    /// Byte budget of the decoded-chunk cache over the disk backends
    /// (`0`, the default, disables it — every mine re-reads the window from
    /// disk, the paper's strictest space posture).  Ignored by the memory
    /// backend.
    pub cache_budget_bytes: usize,
    /// Durability knobs (WAL + checkpoints + crash recovery).  `None`, the
    /// default, keeps the original volatile behaviour; `Some` requires a disk
    /// backend and roots every durable artifact under
    /// [`DurabilityConfig::dir`] (segment files move to its `segments/`
    /// subdirectory regardless of the backend's own path).
    pub durability: Option<DurabilityConfig>,
    /// Process-wide cache-budget arbiter.  `None`, the default, treats
    /// [`DsMatrixConfig::cache_budget_bytes`] as this matrix's own budget
    /// (the single-tenant behaviour).  With a governor, the configured
    /// budget becomes this matrix's *desired* budget: the matrix registers a
    /// [`BudgetLease`] and re-requests at ingest/view boundaries, applying
    /// whatever the governor's process-wide cap and fair-share rule grant.
    /// Ignored by the memory backend, which has no chunk cache to budget.
    pub governor: Option<Arc<BudgetGovernor>>,
}

impl DsMatrixConfig {
    /// Convenience constructor.
    pub fn new(window: WindowConfig, backend: StorageBackend, expected_edges: usize) -> Self {
        Self {
            window,
            backend,
            expected_edges,
            cache_budget_bytes: 0,
            durability: None,
            governor: None,
        }
    }

    /// Sets the decoded-chunk cache budget for the disk backends.
    pub fn with_cache_budget(mut self, budget_bytes: usize) -> Self {
        self.cache_budget_bytes = budget_bytes;
        self
    }

    /// Enables durability (WAL, checkpoints, crash recovery) rooted at the
    /// given configuration's directory.
    pub fn with_durability(mut self, durability: DurabilityConfig) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Subordinates this matrix's chunk-cache budget to a process-wide
    /// [`BudgetGovernor`] (see [`DsMatrixConfig::governor`]).
    pub fn with_budget_governor(mut self, governor: Arc<BudgetGovernor>) -> Self {
        self.governor = Some(governor);
        self
    }
}

/// The Data Stream Matrix of the paper (§2.3).
///
/// Rows are stored as per-batch segments in a
/// [`SegmentedWindowStore`]: ingesting a batch appends one segment holding
/// only the rows the batch touches, and a window slide drops the oldest
/// segment whole.  Capture cost is therefore proportional to the entering
/// batch plus the evicted columns — never to the full window.  Reads go
/// through [`DsMatrix::view`], which on the memory backend borrows an
/// incrementally-maintained row cache (zero-copy, same slide-proportional
/// cost bound); eager flat-[`BitVec`] reads ([`DsMatrix::row`],
/// [`DsMatrix::snapshot`]) remain as the disk fallback and test reference,
/// identical to the paper's conceptual matrix bit for bit.
pub struct DsMatrix {
    store: SegmentedWindowStore,
    window: SlidingWindow,
    num_items: usize,
    num_cols: usize,
    tracker: Option<MemoryTracker>,
    /// Reused per-ingest map of row id → bit chunk for the entering batch.
    chunks: BTreeMap<usize, BitVec>,
    /// Recycled chunk buffers for the map above.
    spare_chunks: Vec<BitVec>,
    /// Singleton supports, maintained at ingest/evict time (never by row
    /// scans): `supports[i]` is the popcount of item `i`'s window row.
    supports: Vec<Support>,
    /// Per live segment, the `(row, ones)` pairs it contributed — what a
    /// future eviction must subtract from `supports` (and zero in the cache).
    segment_ones: VecDeque<Vec<(usize, u64)>>,
    /// The incrementally-maintained read surface behind [`DsMatrix::view`].
    cache: RowCache,
    /// Cumulative read-path cost counters.
    read_stats: ReadStats,
    /// Reused chunk buffer for the segment-direct [`DsMatrix::column`] read.
    col_chunk: BitVec,
    /// Reused per-view flags: which rows of the current pinned-path view are
    /// served from pinned chunks (`true`) vs the eager fallback (`false`).
    pin_flags: Vec<bool>,
    /// Durability state (WAL handle, checkpoint bookkeeping, deferred file
    /// GC).  `None` on volatile matrices — including every memory-backend
    /// matrix — so the non-durable ingest path pays exactly one branch.
    durable: Option<DurableState>,
    /// Memo of the newest [`DsMatrix::snapshot_epoch`] result, invalidated
    /// by every ingest: repeated snapshot calls within one epoch return the
    /// same `Arc` (and prove it with pointer equality in tests).
    last_snapshot: Option<Arc<EpochSnapshot>>,
    /// The chunk-cache budget this matrix *wants*; what it actually gets is
    /// `lease.request(desired)` when governed, `desired` otherwise.
    desired_cache_budget: usize,
    /// Membership in a process-wide [`BudgetGovernor`], if configured.
    lease: Option<BudgetLease>,
}

impl DsMatrix {
    /// Memory-accounting category used when a tracker is attached.
    pub const TRACK_CATEGORY: &'static str = "dsmatrix-resident";

    /// Creates an empty matrix.
    ///
    /// With [`DsMatrixConfig::durability`] set this is a **fresh start**: any
    /// checkpoints, WAL contents and segment files left in the durable
    /// directory from a previous run are discarded.  Use
    /// [`DsMatrix::recover`] to resume from them instead.
    pub fn new(config: DsMatrixConfig) -> Result<Self> {
        let (backend, durable) = match config.durability {
            None => (config.backend, None),
            Some(dur) => {
                Self::validate_durability(&config.backend, &dur)?;
                std::fs::create_dir_all(&dur.dir)?;
                // Fresh start: drop every old durable artifact explicitly.
                // (`SegmentedWindowStore::open` below wipes stale segment
                // files in its directory the same way.)
                Checkpoint::prune_keeping(&dur.dir, 0)?;
                let wal = Wal::create(dur.wal_path())?;
                let backend = StorageBackend::DiskAt(dur.segments_dir());
                (backend, Some(DurableState::fresh(dur, wal)))
            }
        };
        let mut store = SegmentedWindowStore::open(backend)?;
        let lease = Self::lease_for(&config.governor, &store);
        store.set_cache_budget(Self::granted(&lease, config.cache_budget_bytes));
        let cache = RowCache {
            rows: Vec::new(),
            offset: 0,
            enabled: store.is_memory_resident(),
            generation: store.generation(),
        };
        Ok(Self {
            store,
            window: SlidingWindow::new(config.window),
            num_items: config.expected_edges,
            num_cols: 0,
            tracker: None,
            chunks: BTreeMap::new(),
            spare_chunks: Vec::new(),
            supports: vec![0; config.expected_edges],
            segment_ones: VecDeque::new(),
            cache,
            read_stats: ReadStats::default(),
            col_chunk: BitVec::new(),
            pin_flags: Vec::new(),
            durable,
            last_snapshot: None,
            desired_cache_budget: config.cache_budget_bytes,
            lease,
        })
    }

    /// Registers with the configured governor — disk backends only: the
    /// memory backend holds the window resident and ignores cache budgets.
    fn lease_for(
        governor: &Option<Arc<BudgetGovernor>>,
        store: &SegmentedWindowStore,
    ) -> Option<BudgetLease> {
        if store.is_memory_resident() {
            return None;
        }
        governor.as_ref().map(|governor| governor.register())
    }

    /// The budget to apply right now: the lease's grant when governed, the
    /// desired budget otherwise.
    fn granted(lease: &Option<BudgetLease>, desired: usize) -> usize {
        match lease {
            Some(lease) => lease.request(desired),
            None => desired,
        }
    }

    /// Re-requests this matrix's desired budget from the governor and
    /// applies the (possibly changed) grant.  Called at ingest and view
    /// boundaries so every tenant's grant converges as members come and go;
    /// never called per row read.
    fn rebalance_cache_budget(&mut self) {
        if self.lease.is_some() {
            let grant = Self::granted(&self.lease, self.desired_cache_budget);
            if grant != self.store.cache_budget() {
                self.store.set_cache_budget(grant);
            }
        }
    }

    /// Rejects configurations durability cannot honour.
    fn validate_durability(backend: &StorageBackend, dur: &DurabilityConfig) -> Result<()> {
        if matches!(backend, StorageBackend::Memory) {
            return Err(FsmError::config(
                "durability requires a disk backend: the memory backend holds \
                 the window resident and has nothing durable to recover from",
            ));
        }
        if dur.checkpoint_every == 0 {
            return Err(FsmError::config("checkpoint_every must be at least 1"));
        }
        Ok(())
    }

    /// Creates a matrix with the default configuration (disk-backed, `w = 5`).
    pub fn with_window(window: WindowConfig) -> Result<Self> {
        Self::new(DsMatrixConfig {
            window,
            ..DsMatrixConfig::default()
        })
    }

    /// Rebuilds the exact pre-crash window from the durable directory.
    ///
    /// Recovery loads the newest checkpoint that (a) parses with a valid
    /// CRC and (b) whose referenced segment pages all verify, then replays
    /// the WAL tail past it through the ordinary ingest path.  A corrupt
    /// newest checkpoint (or a corrupt segment page it references) makes
    /// recovery fall back to the older retained checkpoint — whose WAL
    /// suffix is retained precisely for this — and, failing that, to an
    /// empty window replayed from the full WAL.  Corrupt candidates are
    /// deleted and named in the [`RecoveryReport`]; recovery never
    /// silently produces a window that differs from what was committed.
    ///
    /// Any I/O error that is *not* a proven corruption fails recovery
    /// outright rather than falling back — a transient error must not
    /// masquerade as data loss.
    pub fn recover(config: DsMatrixConfig) -> Result<Self> {
        let Some(dur) = config.durability.clone() else {
            return Err(FsmError::config(
                "recover() requires DsMatrixConfig::durability",
            ));
        };
        Self::validate_durability(&config.backend, &dur)?;
        std::fs::create_dir_all(&dur.dir)?;
        std::fs::create_dir_all(dur.segments_dir())?;
        let segments_dir = dur.segments_dir();

        // The WAL self-repairs its torn tail on open; everything before the
        // tear is intact (per-record CRCs).
        let (wal, records, torn) = Wal::open(dur.wal_path())?;
        let wal_torn = torn.map(|t| t.reason);

        // Newest checkpoint whose metadata *and* referenced pages verify
        // wins; proven-corrupt candidates are deleted so a later retention
        // prune cannot prefer them over a good older checkpoint.
        let mut skipped = Vec::new();
        let mut chosen = None;
        for (_, path) in Checkpoint::candidates(&dur.dir)? {
            match Self::try_restore(&dur, &path, &config) {
                Ok(pair) => {
                    chosen = Some(pair);
                    break;
                }
                Err(err)
                    if matches!(
                        err,
                        FsmError::CorruptArtifact { .. } | FsmError::CorruptStructure(_)
                    ) =>
                {
                    let name = path
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| path.display().to_string());
                    skipped.push(format!("{name} rejected: {err}"));
                    std::fs::remove_file(&path)?;
                }
                Err(other) => return Err(other),
            }
        }
        let checkpoint_seq = chosen.as_ref().map(|(c, _): &(Checkpoint, _)| c.last_seq);
        let (ckpt, mut store) = match chosen {
            Some(pair) => pair,
            // No usable checkpoint: rebuild from an empty window.  `restore`
            // with `next_uid = 0` wipes every leftover segment file — the
            // replay below re-creates them.
            None => (
                Checkpoint::default(),
                SegmentedWindowStore::restore(segments_dir.clone(), &[], 0)?,
            ),
        };
        let lease = Self::lease_for(&config.governor, &store);
        store.set_cache_budget(Self::granted(&lease, config.cache_budget_bytes));

        // Rebuild the in-memory bookkeeping the checkpoint captured.
        let num_items = (ckpt.num_items as usize).max(config.expected_edges);
        let mut supports: Vec<Support> = ckpt.supports.clone();
        supports.resize(num_items, 0);
        let mut window = SlidingWindow::new(config.window);
        let mut segment_ones = VecDeque::new();
        let mut num_cols = 0usize;
        for seg in &ckpt.segments {
            if window
                .push(seg.batch_id, seg.cols as usize)
                .evicted
                .is_some()
            {
                return Err(FsmError::corrupt(
                    "checkpoint holds more segments than the window admits",
                ));
            }
            num_cols += seg.cols as usize;
            segment_ones.push_back(
                seg.rows
                    .iter()
                    .map(|r| (r.row as usize, r.ones))
                    .collect::<Vec<_>>(),
            );
        }

        let mut durable = DurableState::fresh(dur, wal);
        durable.applied_seq = ckpt.last_seq;
        durable.last_ckpt_seq = checkpoint_seq;
        durable.last_ckpt_uids = ckpt.segments.iter().map(|s| s.uid).collect();
        durable.synced_uid_watermark = ckpt.next_uid;

        let cache = RowCache {
            rows: Vec::new(),
            offset: 0,
            enabled: store.is_memory_resident(),
            generation: store.generation(),
        };
        let mut matrix = Self {
            store,
            window,
            num_items,
            num_cols,
            tracker: None,
            chunks: BTreeMap::new(),
            spare_chunks: Vec::new(),
            supports,
            segment_ones,
            cache,
            read_stats: ReadStats::default(),
            col_chunk: BitVec::new(),
            pin_flags: Vec::new(),
            durable: Some(durable),
            last_snapshot: None,
            desired_cache_budget: config.cache_budget_bytes,
            lease,
        };

        // Replay the WAL tail through the ordinary (post-WAL) ingest path.
        // The tail must continue the checkpoint contiguously; a gap means an
        // artifact lied and recovering "around" it would fabricate a window
        // that never existed.
        let base_seq = ckpt.last_seq;
        for record in records.into_iter().filter(|r| r.seq > base_seq) {
            let applied = matrix
                .durable
                .as_ref()
                .expect("recovering matrix is durable")
                .applied_seq;
            if record.seq != applied + 1 {
                return Err(FsmError::corrupt_artifact(
                    "wal.log",
                    format!(
                        "replay gap: expected seq {}, found seq {}",
                        applied + 1,
                        record.seq
                    ),
                ));
            }
            let batch = decode_batch(&record.payload)?;
            matrix.ingest_applied(&batch)?;
            let durable = matrix
                .durable
                .as_mut()
                .expect("recovering matrix is durable");
            durable.recovery_replayed += 1;
        }

        // Stray segment files (older crashes, bypassed evict GC): queue them
        // for the next checkpoint's garbage collection rather than leaking.
        let live: BTreeSet<u64> = matrix.store.live_uids().into_iter().collect();
        let strays = scan_segment_files(&segments_dir)?;
        let durable = matrix
            .durable
            .as_mut()
            .expect("recovering matrix is durable");
        for (uid, path) in strays {
            let referenced = live.contains(&uid)
                || durable.last_ckpt_uids.contains(&uid)
                || durable.prev_ckpt_uids.contains(&uid)
                || durable.garbage.iter().any(|(g, _)| *g == uid);
            if !referenced {
                durable.garbage.push((uid, path));
            }
        }
        durable.report = Some(RecoveryReport {
            checkpoint_seq,
            replayed_batches: durable.recovery_replayed,
            wal_torn,
            skipped_artifacts: skipped,
        });
        matrix.report_memory();
        Ok(matrix)
    }

    /// Loads one checkpoint candidate and restores + verifies the segment
    /// store it references.  Corruption errors make [`DsMatrix::recover`]
    /// fall back to the next candidate.
    fn try_restore(
        dur: &DurabilityConfig,
        path: &std::path::Path,
        config: &DsMatrixConfig,
    ) -> Result<(Checkpoint, SegmentedWindowStore)> {
        let ckpt = Checkpoint::load(path)?;
        if ckpt.window_batches != config.window.window_batches as u64 {
            return Err(FsmError::config(format!(
                "checkpoint was written with window_batches = {}, config says {}",
                ckpt.window_batches, config.window.window_batches
            )));
        }
        if ckpt.segments.len() > config.window.window_batches {
            return Err(FsmError::corrupt_artifact(
                path.file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_else(|| path.display().to_string()),
                format!(
                    "references {} segments but the window holds at most {}",
                    ckpt.segments.len(),
                    config.window.window_batches
                ),
            ));
        }
        let mut store = SegmentedWindowStore::restore(
            dur.segments_dir(),
            &ckpt.segment_metas(),
            ckpt.next_uid,
        )?;
        store.verify_segments()?;
        Ok((ckpt, store))
    }

    /// Attaches a memory tracker; the matrix reports the bytes it holds
    /// resident (which, for the disk backend, excludes the row payloads).
    pub fn set_tracker(&mut self, tracker: MemoryTracker) {
        self.tracker = Some(tracker);
        self.report_memory();
    }

    /// Number of rows (domain edges) currently represented.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of columns (window transactions), `|T|` in the paper.
    pub fn num_transactions(&self) -> usize {
        self.num_cols
    }

    /// Batch boundaries as cumulative column counts (Example 1's
    /// "Boundaries: Cols 3 & 6").
    pub fn boundaries(&self) -> Vec<usize> {
        self.window.boundaries()
    }

    /// Number of batches currently inside the window.
    pub fn num_batches(&self) -> usize {
        self.window.num_batches()
    }

    /// Returns `true` if no batch has been ingested yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Returns `true` if the rows are spilled to disk rather than resident.
    pub fn is_disk_backed(&self) -> bool {
        !self.store.is_memory_resident()
    }

    /// Returns `true` if this matrix writes a WAL and checkpoints.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// What [`DsMatrix::recover`] found and did, if this matrix was built by
    /// it (`None` for fresh matrices).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.durable.as_ref().and_then(|d| d.report.as_ref())
    }

    /// Identifier of the newest batch in the window (what a resumed stream
    /// should continue after).
    pub fn last_batch_id(&self) -> Option<BatchId> {
        self.window.newest()
    }

    /// Ingests one batch, sliding the window if it is already full.
    ///
    /// This is the incremental capture step: the entering batch becomes one
    /// new row segment (touching only the rows that actually occur in the
    /// batch), and — when the window slides — the evicted batch's segment is
    /// dropped whole.  Unevicted row prefixes are never rewritten; the
    /// [`DsMatrix::capture_stats`] counters prove it.
    ///
    /// On a durable matrix the batch is first appended to the WAL and
    /// `fsync`ed — only then is any in-memory or segment state mutated
    /// (write-ahead protocol).  Every `checkpoint_every` slides the apply
    /// step also writes a checkpoint, prunes the WAL prefix the *older*
    /// retained checkpoint covers, and unlinks evicted segment files that no
    /// retained checkpoint references any more.
    pub fn ingest_batch(&mut self, batch: &Batch) -> Result<SlideOutcome> {
        self.rebalance_cache_budget();
        if let Some(durable) = &mut self.durable {
            let seq = durable.applied_seq + 1;
            durable.wal.append(seq, &encode_batch(batch))?;
        }
        self.ingest_applied(batch)
    }

    /// The post-WAL half of [`DsMatrix::ingest_batch`]: mutates the window
    /// state.  Recovery replays WAL records through this same path (without
    /// re-appending them).
    fn ingest_applied(&mut self, batch: &Batch) -> Result<SlideOutcome> {
        // The window is about to change epoch; snapshots already handed out
        // stay valid (they own their data), only the memo goes stale.
        // Dropping it here also releases the matrix's own reference to the
        // evicted segment, so reclamation is driven by readers alone.
        self.last_snapshot = None;
        let outcome = self.window.push(batch.id, batch.len());
        if let Some((_, cols)) = outcome.evicted {
            let dropped = match &mut self.durable {
                None => self.store.pop_segment()?,
                Some(durable) => {
                    // Durable evictions defer the unlink: a retained
                    // checkpoint may still reference the file.
                    let (cols, detached) = self.store.pop_segment_detached()?;
                    if let Some((uid, path)) = detached {
                        durable.garbage.push((uid, path));
                    }
                    cols
                }
            };
            debug_assert_eq!(dropped, cols, "window bookkeeping must match the store");
            self.num_cols -= dropped;
            // Incremental evict: subtract the leaving segment's popcounts
            // from the support counters, zero its bits in the cached rows it
            // touched, and grow the dead prefix — no other row is visited.
            let evicted = self
                .segment_ones
                .pop_front()
                .ok_or_else(|| FsmError::corrupt("segment bookkeeping out of sync"))?;
            for &(row, ones) in &evicted {
                self.supports[row] -= ones;
                if self.cache.enabled {
                    self.cache.rows[row]
                        .clear_range(self.cache.offset, self.cache.offset + dropped);
                }
            }
            if self.cache.enabled {
                self.cache.offset += dropped;
                self.compact_cache_if_due();
            }
        }

        // Grow the domain if the batch mentions edges beyond the current rows.
        let max_edge = batch
            .iter()
            .flat_map(|t| t.iter())
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0);
        self.num_items = self.num_items.max(max_edge);
        if self.supports.len() < self.num_items {
            self.supports.resize(self.num_items, 0);
        }
        if self.cache.enabled && self.cache.rows.len() < self.num_items {
            self.cache.rows.resize_with(self.num_items, BitVec::new);
        }

        // One bit chunk per row the batch touches; rows absent from the batch
        // cost nothing and read back as zeros.
        debug_assert!(self.chunks.is_empty());
        for (col, transaction) in batch.iter().enumerate() {
            for edge in transaction.iter() {
                let chunk = self.chunks.entry(edge.index()).or_insert_with(|| {
                    let mut chunk = self.spare_chunks.pop().unwrap_or_default();
                    chunk.resize(0);
                    chunk.resize(batch.len());
                    chunk
                });
                chunk.set(col, true);
            }
        }
        self.store
            .push_segment(batch.len(), self.chunks.iter().map(|(id, c)| (*id, c)))?;

        // Incremental read-side maintenance, again touching only the rows the
        // batch touches: bump the support counters, remember what an eventual
        // eviction must undo, and splice the chunk onto the cached row.
        let mut entering = Vec::with_capacity(self.chunks.len());
        let splice_at = self.cache.offset + self.num_cols;
        for (&id, chunk) in self.chunks.iter() {
            let ones = chunk.count_ones();
            self.supports[id] += ones;
            entering.push((id, ones));
            if self.cache.enabled {
                let row = &mut self.cache.rows[id];
                debug_assert!(row.len() <= splice_at, "cached row ahead of the window");
                row.resize(splice_at);
                row.extend_from_bitvec(chunk);
                self.read_stats.cache_splice_words += words_of(chunk.len());
            }
        }
        self.segment_ones.push_back(entering);
        self.cache.generation = self.store.generation();

        while let Some((_, chunk)) = self.chunks.pop_first() {
            self.spare_chunks.push(chunk);
        }
        self.num_cols += batch.len();
        debug_assert_eq!(self.num_cols, self.store.num_cols());
        self.report_memory();

        let checkpoint_due = if let Some(durable) = &mut self.durable {
            durable.applied_seq += 1;
            durable.slides_since_ckpt += 1;
            durable.slides_since_ckpt >= durable.config.checkpoint_every
        } else {
            false
        };
        if checkpoint_due {
            self.write_checkpoint()?;
        }
        Ok(outcome)
    }

    /// Writes a checkpoint of the current window, rotates the two retained
    /// checkpoints, garbage-collects unreferenced evicted segment files, and
    /// prunes the WAL prefix the older retained checkpoint covers.
    ///
    /// Called automatically every [`DurabilityConfig::checkpoint_every`]
    /// slides; exposed for tests and shutdown paths.  Errors if the matrix is
    /// not durable.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.durable.is_none() {
            return Err(FsmError::config(
                "checkpoint() requires a durable matrix (DsMatrixConfig::durability)",
            ));
        }
        self.write_checkpoint()
    }

    /// Serialises everything needed to rebuild this window — the
    /// backend-agnostic half of tenant spill-to-disk.
    ///
    /// * **Durable matrices** already keep the full payload on disk under
    ///   their durable root: hibernating one writes a checkpoint aligned
    ///   with the present state (reusing [`Checkpoint`] — no second format,
    ///   no second copy of the row data) and `spill_dir` is untouched.
    /// * **Non-durable matrices** — the memory backend, or disk segments in
    ///   a self-cleaning temp directory — write a full-payload
    ///   [`Hibernation`] image (segments, batch boundaries, support
    ///   counters) to `spill_dir/window.hib` under the same CRC-framed,
    ///   temp+fsync+rename discipline as checkpoints.
    ///
    /// Either way, dropping the matrix afterwards releases its resident
    /// state — and its [`BudgetLease`], returning the cache grant to the
    /// governor for warm tenants to re-expand into.  [`DsMatrix::thaw`]
    /// rebuilds a byte-identical window.
    pub fn hibernate(&mut self, spill_dir: &Path) -> Result<()> {
        if self.durable.is_some() {
            return self.checkpoint();
        }
        let batch_ids = self.window.batch_ids();
        if batch_ids.len() != self.store.num_segments() {
            return Err(FsmError::corrupt(
                "segment/window bookkeeping out of sync at hibernate",
            ));
        }
        let mut segments = Vec::with_capacity(batch_ids.len());
        let mut chunk = BitVec::new();
        for (seg, batch_id) in batch_ids.into_iter().enumerate() {
            let cols = self.store.segment_cols(seg).ok_or_else(|| {
                FsmError::corrupt(format!("segment {seg} vanished mid-hibernate"))
            })?;
            let ids = self.store.segment_row_ids(seg).ok_or_else(|| {
                FsmError::corrupt(format!("segment {seg} vanished mid-hibernate"))
            })?;
            let mut rows = Vec::with_capacity(ids.len());
            for id in ids {
                if !self.store.read_segment_chunk(seg, id, &mut chunk)? {
                    return Err(FsmError::corrupt(format!(
                        "segment {seg} lost row {id} between index and payload"
                    )));
                }
                rows.push(HibernationRow {
                    row: id as u64,
                    chunk: chunk.to_bytes(),
                });
            }
            segments.push(HibernationSegment {
                batch_id,
                cols: cols as u64,
                rows,
            });
        }
        let image = Hibernation {
            num_items: self.num_items as u64,
            window_batches: self.window.config().window_batches as u64,
            supports: self.supports[..self.num_items].to_vec(),
            segments,
        };
        image.write(spill_dir)?;
        Ok(())
    }

    /// Rebuilds a hibernated window.
    ///
    /// Durable configurations recover from their WAL + checkpoints
    /// ([`DsMatrix::recover`]); non-durable ones load
    /// `spill_dir/window.hib` and replay the reconstructed batches through
    /// the ordinary ingest path, which rebuilds the segments, the row cache
    /// and the support counters exactly as the original ingests did — the
    /// thawed window is byte-identical to the hibernated one (and a fresh
    /// [`BudgetLease`] is registered when the config carries a governor).
    ///
    /// The corrupt-artifact discipline matches recovery: a damaged image
    /// fails with [`FsmError::CorruptArtifact`] naming the file, and the
    /// proven-corrupt artifact is deleted so the tenant can be dropped and
    /// recreated cleanly instead of silently serving a different window.
    pub fn thaw(config: DsMatrixConfig, spill_dir: &Path) -> Result<Self> {
        if config.durability.is_some() {
            return Self::recover(config);
        }
        let path = Hibernation::artifact_path(spill_dir);
        let artifact = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(Hibernation::FILE_NAME)
            .to_string();
        let image = match Hibernation::load(&path) {
            Ok(image) => image,
            Err(err @ (FsmError::CorruptArtifact { .. } | FsmError::CorruptStructure(_))) => {
                // Same discipline as recovery's checkpoint walk: a
                // proven-corrupt artifact is removed so it cannot poison a
                // later attempt; transient I/O errors leave it in place.
                let _ = std::fs::remove_file(&path);
                return Err(err);
            }
            Err(err) => return Err(err),
        };
        if image.window_batches as usize != config.window.window_batches {
            return Err(FsmError::config(format!(
                "hibernated window holds {} batches but the config asks for {} — \
                 thaw must use the original window size",
                image.window_batches, config.window.window_batches
            )));
        }
        if image.segments.len() > image.window_batches as usize
            || image.supports.len() != image.num_items as usize
        {
            let _ = std::fs::remove_file(&path);
            return Err(FsmError::corrupt_artifact(
                &artifact,
                "segment or support counts disagree with the header",
            ));
        }
        let mut config = config;
        config.expected_edges = config.expected_edges.max(image.num_items as usize);
        let mut matrix = Self::new(config)?;
        for seg in &image.segments {
            let batch = hibernated_batch(seg, &artifact)?;
            matrix.ingest_batch(&batch)?;
        }
        // The image's counters are redundant with its payloads; divergence
        // means damage the CRC could not see structurally (or a bug), and a
        // silently different window is the one outcome thaw must never have.
        let num_items = image.num_items as usize;
        let rebuilt = matrix.supports.get(..num_items).unwrap_or(&[]);
        if rebuilt != image.supports.as_slice()
            || matrix.supports[num_items..].iter().any(|&s| s != 0)
        {
            let _ = std::fs::remove_file(&path);
            return Err(FsmError::corrupt_artifact(
                &artifact,
                "support counters diverge from the segment payloads",
            ));
        }
        Ok(matrix)
    }

    fn write_checkpoint(&mut self) -> Result<()> {
        let durable = self
            .durable
            .as_mut()
            .expect("write_checkpoint on a non-durable matrix");

        // 1. Make every live segment durable before referencing it from a
        //    checkpoint.  Segments below the watermark were synced by an
        //    earlier checkpoint and are immutable since.
        durable.extra_fsyncs += self.store.sync_segments(durable.synced_uid_watermark)?;
        durable.synced_uid_watermark = self.store.next_segment_id();

        // 2. Snapshot the window metadata: segment list + row indexes +
        //    support counters.  Row payloads stay in the (immutable) segment
        //    files — a checkpoint never copies row data.
        let metas = self
            .store
            .segment_metas()
            .ok_or_else(|| FsmError::corrupt("durable matrix with a memory-resident store"))?;
        let batch_ids = self.window.batch_ids();
        if metas.len() != batch_ids.len() || metas.len() != self.segment_ones.len() {
            return Err(FsmError::corrupt(
                "segment/window/support bookkeeping out of sync at checkpoint",
            ));
        }
        let segments = metas
            .into_iter()
            .zip(batch_ids)
            .zip(self.segment_ones.iter())
            .map(|((meta, batch_id), ones)| {
                let ones: BTreeMap<usize, u64> = ones.iter().copied().collect();
                CheckpointSegment {
                    uid: meta.uid,
                    batch_id,
                    cols: meta.cols as u64,
                    rows: meta
                        .rows
                        .iter()
                        .map(|&(row, first_page, len)| CheckpointRow {
                            row: row as u64,
                            first_page: first_page as u64,
                            len: len as u64,
                            ones: ones.get(&row).copied().unwrap_or(0),
                        })
                        .collect(),
                }
            })
            .collect();
        let checkpoint = Checkpoint {
            last_seq: durable.applied_seq,
            next_uid: self.store.next_segment_id(),
            num_items: self.num_items as u64,
            window_batches: self.window.config().window_batches as u64,
            supports: self.supports[..self.num_items].to_vec(),
            segments,
        };

        // 3. Persist it and drop checkpoints older than the two newest.
        let (_, bytes, fsyncs) = checkpoint.write(&durable.config.dir)?;
        durable.checkpoint_bytes += bytes;
        durable.extra_fsyncs += fsyncs;
        Checkpoint::prune_keeping(&durable.config.dir, 2)?;

        // 4. Rotate the retained-checkpoint bookkeeping.
        durable.prev_ckpt_seq = durable.last_ckpt_seq;
        durable.last_ckpt_seq = Some(durable.applied_seq);
        let live: BTreeSet<u64> = checkpoint.segments.iter().map(|s| s.uid).collect();
        durable.prev_ckpt_uids = std::mem::replace(&mut durable.last_ckpt_uids, live);

        // 5. Unlink evicted segment files no retained checkpoint references.
        let garbage = std::mem::take(&mut durable.garbage);
        for (uid, path) in garbage {
            if durable.last_ckpt_uids.contains(&uid) || durable.prev_ckpt_uids.contains(&uid) {
                durable.garbage.push((uid, path));
            } else {
                fsm_storage::remove_segment_file(&path)?;
            }
        }

        // 6. Prune the WAL prefix the *older* retained checkpoint covers: if
        //    the newest checkpoint is ever found corrupt, the older one plus
        //    the retained WAL suffix still reaches the pre-crash window.
        if let Some(prev_seq) = durable.prev_ckpt_seq {
            durable.wal.prune_through(prev_seq)?;
        }
        durable.slides_since_ckpt = 0;
        Ok(())
    }

    /// Physically drops the cache's dead prefix once it outgrows the live
    /// window.  Rationing the [`BitVec::drop_prefix`] pass this way keeps its
    /// amortised cost per slide below the words the slide itself wrote, so
    /// lazy eviction never degrades into per-slide full-row rewrites.
    fn compact_cache_if_due(&mut self) {
        const MIN_DEAD_BITS: usize = 512;
        if self.cache.offset < self.num_cols.max(MIN_DEAD_BITS) {
            return;
        }
        for row in &mut self.cache.rows {
            if row.is_empty() {
                continue;
            }
            self.read_stats.cache_compact_words +=
                words_of(row.len().saturating_sub(self.cache.offset));
            row.drop_prefix(self.cache.offset);
        }
        self.cache.offset = 0;
    }

    /// Cumulative capture-cost counters (words/rows written, segments
    /// appended and dropped).  Differencing `words_written` across two
    /// [`DsMatrix::ingest_batch`] calls yields the exact write cost of one
    /// slide.
    pub fn capture_stats(&self) -> CaptureStats {
        self.store.stats()
    }

    /// Loads the bit-vector row of `item` (all zeros if the edge has never
    /// occurred), assembled from the live per-batch segments.
    ///
    /// This reads the segment store — the ground truth — not the row cache,
    /// which is exactly what makes it useful as the reference the cache's
    /// shadow-model tests compare against.  Miners should go through
    /// [`DsMatrix::view`] instead.
    pub fn row(&mut self, item: EdgeId) -> Result<BitVec> {
        let mut row = BitVec::new();
        if item.index() < self.num_items {
            // Memory backend: concatenate the borrowed chunk view (no
            // serialise round-trip); disk: decode chunk by chunk.
            if let Some(chunked) = self.store.chunked_row(item.index()) {
                chunked.assemble_into(&mut row);
            } else {
                self.store.assemble_row(item.index(), &mut row)?;
            }
        }
        row.resize(self.num_cols);
        // Unknown rows materialise a (zero-filled) flat row too, so both
        // counters tick together — one row, its padded word count.
        self.read_stats.rows_assembled += 1;
        self.read_stats.words_assembled += words_of(row.len());
        Ok(row)
    }

    /// The zero-copy read surface over the live window: what all five miners
    /// read.
    ///
    /// On the memory backend this borrows the incrementally-maintained row
    /// cache — nothing is copied, so the steady-state read cost of a mine
    /// call is whatever the preceding slides already paid (rows touched by
    /// the slide, counted in [`DsMatrix::read_stats`]).
    ///
    /// On the disk backends with a [`DsMatrixConfig::cache_budget_bytes`]
    /// budget configured, rows are served **straight from pinned decoded
    /// chunks**: each row's chunks are pinned in the budgeted
    /// [`fsm_storage::ChunkCache`] for the duration of the borrow (a window
    /// slide releases every pin — the generation check in the storage layer
    /// refuses stale borrows) and the view streams them through
    /// [`fsm_storage::ChunkedRow`] cursors, so rows whose chunks fit the
    /// budget are never assembled into flat vectors at all
    /// (`rows_pinned` in [`DsMatrix::read_stats`]).  A steady-state mine
    /// then both fetches only the pages the preceding slide invalidated
    /// (`pages_read`) *and* assembles zero words (`words_assembled`),
    /// matching the memory backend.  Rows whose chunks miss the budget fall
    /// back to counted eager assembly into the cache buffers — and with a
    /// budget of `0` (the default) every row does, reproducing the original
    /// fully-eager read path byte for byte.
    pub fn view(&mut self) -> Result<WindowView<'_>> {
        self.rebalance_cache_budget();
        if self.cache.enabled {
            debug_assert_eq!(
                self.cache.generation,
                self.store.generation(),
                "row cache must be maintained by every ingest"
            );
            if self.cache.rows.len() < self.num_items {
                self.cache.rows.resize_with(self.num_items, BitVec::new);
            }
        } else if self.store.cache_budget() > 0 {
            return self.pinned_view();
        } else {
            // Eager fallback into the cache's buffers.  Direct callers that
            // keep taking views reuse the allocations; the `StreamMiner`
            // facade instead calls `trim_cache()` after each mine so the
            // between-mines resident footprint stays bookkeeping-only (the
            // paper's on-disk space story).
            self.cache.offset = 0;
            self.cache.rows.resize_with(self.num_items, BitVec::new);
            for idx in 0..self.num_items {
                let mut row = std::mem::take(&mut self.cache.rows[idx]);
                self.store.assemble_row(idx, &mut row)?;
                row.resize(self.num_cols);
                self.read_stats.rows_assembled += 1;
                self.read_stats.words_assembled += words_of(row.len());
                self.cache.rows[idx] = row;
            }
        }
        debug_assert!(self.supports.len() >= self.num_items);
        Ok(WindowView::new(
            &self.cache.rows[..self.num_items],
            &self.supports[..self.num_items],
            self.cache.offset,
            self.num_cols,
        ))
    }

    /// The budgeted-disk view path: pin every row's chunks in the decoded
    /// cache and borrow them in place; assemble flat fallbacks only for rows
    /// the budget cannot hold.
    fn pinned_view(&mut self) -> Result<WindowView<'_>> {
        // Phase 1 (mutable): decide per row.  Pins from a previous view are
        // stale — release them so this view's working set competes for the
        // whole budget — then pin row by row, falling back to (counted)
        // eager assembly whenever a row's chunks miss the budget.
        self.store.release_pins();
        let pinned_at = self.store.generation();
        self.cache.offset = 0;
        self.cache.rows.resize_with(self.num_items, BitVec::new);
        self.pin_flags.clear();
        self.pin_flags.resize(self.num_items, false);
        for idx in 0..self.num_items {
            if self.store.pin_row_chunks(idx)? {
                self.pin_flags[idx] = true;
                self.read_stats.rows_pinned += 1;
            } else {
                let mut row = std::mem::take(&mut self.cache.rows[idx]);
                self.store.assemble_row(idx, &mut row)?;
                row.resize(self.num_cols);
                self.read_stats.rows_assembled += 1;
                self.read_stats.words_assembled += words_of(row.len());
                self.cache.rows[idx] = row;
            }
        }
        // Phase 2 (shared): borrow the pinned chunks (generation-checked)
        // and the flat fallbacks into one mixed view.
        let mut rows = Vec::with_capacity(self.num_items);
        for idx in 0..self.num_items {
            if self.pin_flags[idx] {
                rows.push(MixedRow::Chunked(
                    self.store.pinned_chunked_row(idx, pinned_at)?,
                ));
            } else {
                rows.push(MixedRow::Flat(&self.cache.rows[idx]));
            }
        }
        debug_assert!(self.supports.len() >= self.num_items);
        Ok(WindowView::new_mixed(
            rows,
            &self.supports[..self.num_items],
            self.num_cols,
        ))
    }

    /// An owned, `Arc`-backed snapshot of the current window epoch — the
    /// concurrent twin of [`DsMatrix::view`].
    ///
    /// The returned [`EpochSnapshot`] is `Send + Sync` and borrows nothing
    /// from the matrix: reader threads hold it (and mine it through
    /// [`EpochSnapshot::view`]) while [`DsMatrix::ingest_batch`] keeps
    /// appending and sliding here.  Snapshot-mined output is byte-identical
    /// to a stop-the-world mine at the same epoch (see
    /// `crates/core/tests/epoch_agreement.rs`).
    ///
    /// Cost: on the memory backend the snapshot shares the store's segment
    /// data (`Arc` clones plus a copy of the support counters); on the disk
    /// backends each segment is decoded once and memoised
    /// ([`fsm_storage::SegmentedWindowStore::epoch_segment`]), so in the
    /// sliding steady state a snapshot pays only for the segment the last
    /// slide appended.  Within one epoch repeated calls return the same
    /// `Arc`.  Old epochs are reclaimed by plain `Arc` drops — a slide,
    /// [`DsMatrix::set_cache_budget`] or a later mine never invalidates a
    /// held snapshot.
    pub fn snapshot_epoch(&mut self) -> Result<Arc<EpochSnapshot>> {
        let epoch = self.store.generation();
        if let Some(snapshot) = &self.last_snapshot {
            if snapshot.epoch() == epoch {
                return Ok(Arc::clone(snapshot));
            }
        }
        let mut segments = Vec::with_capacity(self.store.num_segments());
        for seg in 0..self.store.num_segments() {
            segments.push(self.store.epoch_segment(seg)?);
        }
        debug_assert!(self.supports.len() >= self.num_items);
        let snapshot = Arc::new(EpochSnapshot::new(
            epoch,
            self.window.num_batches(),
            self.window.newest(),
            segments,
            self.supports[..self.num_items].to_vec(),
            self.num_items,
            self.num_cols,
        ));
        self.last_snapshot = Some(Arc::clone(&snapshot));
        Ok(snapshot)
    }

    /// Cumulative read-path cost counters (words eagerly assembled, cache
    /// maintenance work, disk pages fetched and chunk-cache hits).
    /// Differencing `words_assembled` across a mine call measures that
    /// call's assembly cost; differencing `pages_read` measures its disk
    /// read amplification.
    pub fn read_stats(&self) -> ReadStats {
        let mut stats = self.read_stats;
        let io = self.store.io_stats();
        stats.pages_read = io.pages_read;
        stats.cache_hits = io.cache_hits;
        if let Some(durable) = &self.durable {
            let wal = durable.wal.stats();
            stats.wal_bytes_written = wal.bytes_written;
            stats.fsyncs = wal.fsyncs + durable.extra_fsyncs;
            stats.checkpoint_bytes = durable.checkpoint_bytes;
            stats.recovery_replayed_batches = durable.recovery_replayed;
        }
        stats
    }

    /// The decoded-chunk cache budget the disk backends read through (zero
    /// when disabled or on the memory backend).
    pub fn cache_budget(&self) -> usize {
        self.store.cache_budget()
    }

    /// Re-budgets the disk backends' decoded-chunk cache (evicting to fit;
    /// no-op on the memory backend).  Exposed so long-lived matrices can be
    /// re-tuned without rebuilding the window.
    pub fn set_cache_budget(&mut self, budget_bytes: usize) {
        self.desired_cache_budget = budget_bytes;
        self.store
            .set_cache_budget(Self::granted(&self.lease, budget_bytes));
        self.report_memory();
    }

    /// Frees the eager [`DsMatrix::view`] fallback materialisation of the
    /// disk backends and releases any chunk pins the pinned view path took
    /// (no-op on the memory backend, whose cache is the
    /// incrementally-maintained read surface, not a copy).  Released chunks
    /// stay cached — within the budget — so the next mine re-pins them
    /// without touching the disk; they merely become evictable again.
    ///
    /// The facade calls this after a disk-backed mine — through an RAII
    /// guard, so it also runs when mining errors or panics — keeping the
    /// window's between-mines resident footprint what the paper promises:
    /// bookkeeping, plus at most the configured chunk-cache budget.
    pub fn trim_cache(&mut self) {
        if !self.cache.enabled {
            self.cache.rows = Vec::new();
            self.store.release_pins();
        }
    }

    /// Materialises every live-window row into an immutable [`RowSnapshot`].
    ///
    /// Demoted from the default read path: miners now share the zero-copy
    /// [`DsMatrix::view`].  The eager snapshot remains for callers that need
    /// an owned copy outliving the matrix, and as the reference surface the
    /// view's byte-identity tests compare against.
    pub fn snapshot(&mut self) -> Result<RowSnapshot> {
        let mut rows = Vec::with_capacity(self.num_items);
        for idx in 0..self.num_items {
            let mut row = BitVec::new();
            self.store.assemble_row(idx, &mut row)?;
            row.resize(self.num_cols);
            self.read_stats.rows_assembled += 1;
            self.read_stats.words_assembled += words_of(row.len());
            rows.push(row);
        }
        Ok(RowSnapshot::new(rows, self.num_cols))
    }

    /// Support of a single edge, from the counters maintained at
    /// ingest/evict time (no row scan).
    pub fn support(&mut self, item: EdgeId) -> Result<Support> {
        Ok(self.supports.get(item.index()).copied().unwrap_or(0))
    }

    /// Supports of every edge in canonical order — the first step of both
    /// vertical algorithms (§3.4 and §4).  Counter reads, no row scans.
    pub fn singleton_supports(&mut self) -> Result<Vec<(EdgeId, Support)>> {
        Ok(self
            .supports
            .iter()
            .take(self.num_items)
            .enumerate()
            .map(|(idx, &support)| (EdgeId::new(idx as u32), support))
            .collect())
    }

    /// Reconstructs one window transaction (one column read downwards).
    ///
    /// Reads only the *owning segment's* chunks — the rows that batch
    /// touched — instead of assembling every row of the matrix, so the cost
    /// is `O(rows in the segment)` rather than `O(edges × window)`.
    pub fn column(&mut self, column: usize) -> Result<Transaction> {
        let (seg, offset) = self.store.locate_column(column).ok_or_else(|| {
            FsmError::corrupt(format!(
                "column {column} out of range ({} transactions in window)",
                self.num_cols
            ))
        })?;
        let mut edges = Vec::new();
        if self.store.is_memory_resident() {
            // Memory backend: borrow the chunks, copy nothing.
            let chunks = self
                .store
                .segment_chunks(seg)
                .ok_or_else(|| FsmError::corrupt(format!("segment {seg} vanished")))?;
            for (id, chunk) in chunks {
                if chunk.get(offset) {
                    edges.push(EdgeId::new(id as u32));
                }
            }
        } else {
            // Disk backend: one chunk read per touched row, through a single
            // scratch buffer reused across rows (and across calls).
            let ids = self
                .store
                .segment_row_ids(seg)
                .ok_or_else(|| FsmError::corrupt(format!("segment {seg} vanished")))?;
            for id in ids {
                if self
                    .store
                    .read_segment_chunk(seg, id, &mut self.col_chunk)?
                    && self.col_chunk.get(offset)
                {
                    edges.push(EdgeId::new(id as u32));
                }
                // Same unit as every other increment: 64-bit words of the
                // materialised payload (a chunk here, not a full row, so
                // `rows_assembled` is deliberately not ticked).
                self.read_stats.words_assembled += words_of(self.col_chunk.len());
            }
        }
        Ok(Transaction::from_edges(edges))
    }

    /// Builds the `{pivot}`-projected database: for every column whose pivot
    /// bit is `1`, the items strictly *after* the pivot in canonical order
    /// ("extract its column downwards", Example 2).
    ///
    /// The result is a weighted transaction list ready for FP-tree
    /// construction; identical suffixes are merged to keep it small.
    ///
    /// Only the pivot row and the rows after it are assembled, so a single
    /// projection never materialises the whole window.  Callers projecting
    /// every pivot in a loop should [`DsMatrix::snapshot`] once and use
    /// [`RowSnapshot::project_into`] instead — that is what the parallel
    /// horizontal miners do.
    pub fn project(&mut self, pivot: EdgeId) -> Result<ProjectedRows> {
        let pivot_row = self.row(pivot)?;
        let columns: Vec<usize> = pivot_row.iter_ones().collect();
        if columns.is_empty() {
            return Ok(Vec::new());
        }
        // suffixes[i] collects the items of window column columns[i].
        let mut suffixes: Vec<Vec<EdgeId>> = vec![Vec::new(); columns.len()];
        let mut row = BitVec::new();
        for idx in (pivot.index() + 1)..self.num_items {
            self.store.assemble_row(idx, &mut row)?;
            for (slot, &col) in columns.iter().enumerate() {
                if row.get(col) {
                    suffixes[slot].push(EdgeId::new(idx as u32));
                }
            }
        }
        // Merge identical suffixes into weighted entries.
        suffixes.sort();
        let mut merged: ProjectedRows = Vec::new();
        for suffix in suffixes {
            if suffix.is_empty() {
                continue;
            }
            match merged.last_mut() {
                Some((prev, count)) if *prev == suffix => *count += 1,
                _ => merged.push((suffix, 1)),
            }
        }
        Ok(merged)
    }

    /// Bytes resident in main memory: window bookkeeping, the reused chunk
    /// buffers, the support counters and row cache, plus — for the memory
    /// backend — the segment payloads.
    pub fn resident_bytes(&self) -> usize {
        let bookkeeping = self.window.num_batches() * std::mem::size_of::<(u64, usize)>();
        let scratch: usize = self.spare_chunks.iter().map(BitVec::heap_bytes).sum();
        let counters = self.supports.capacity() * std::mem::size_of::<Support>()
            + self
                .segment_ones
                .iter()
                .map(|s| s.capacity() * std::mem::size_of::<(usize, u64)>())
                .sum::<usize>();
        let cache: usize = self.cache.rows.iter().map(BitVec::heap_bytes).sum();
        bookkeeping + scratch + counters + cache + self.store.resident_bytes()
    }

    /// Bytes written to disk by the live segments (zero for the memory
    /// backend).
    pub fn on_disk_bytes(&self) -> u64 {
        self.store.on_disk_bytes()
    }

    fn report_memory(&self) {
        if let Some(tracker) = &self.tracker {
            tracker.set(Self::TRACK_CATEGORY, self.resident_bytes() as u64);
        }
    }
}

/// Reconstructs the batch a hibernated segment captured: column `t` of the
/// segment is transaction `t`, containing every row (edge) whose chunk has
/// bit `t` set.  Feeding the result back through [`DsMatrix::ingest_batch`]
/// rebuilds the segment bit for bit.
fn hibernated_batch(seg: &HibernationSegment, artifact: &str) -> Result<Batch> {
    let cols = seg.cols as usize;
    let mut edges_per_col: Vec<Vec<u32>> = vec![Vec::new(); cols];
    for row in &seg.rows {
        let chunk = BitVec::from_bytes(&row.chunk).ok_or_else(|| {
            FsmError::corrupt_artifact(
                artifact,
                format!(
                    "row {} of batch {} has a malformed chunk",
                    row.row, seg.batch_id
                ),
            )
        })?;
        if chunk.len() != cols {
            return Err(FsmError::corrupt_artifact(
                artifact,
                format!(
                    "row {} of batch {} spans {} columns, segment has {}",
                    row.row,
                    seg.batch_id,
                    chunk.len(),
                    cols
                ),
            ));
        }
        let row_id = u32::try_from(row.row).map_err(|_| {
            FsmError::corrupt_artifact(
                artifact,
                format!(
                    "row id {} of batch {} overflows the edge domain",
                    row.row, seg.batch_id
                ),
            )
        })?;
        for col in chunk.iter_ones() {
            edges_per_col[col].push(row_id);
        }
    }
    let transactions = edges_per_col
        .into_iter()
        .map(Transaction::from_raw)
        .collect();
    Ok(Batch::from_transactions(seg.batch_id, transactions))
}

impl std::fmt::Debug for DsMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DsMatrix")
            .field("items", &self.num_items)
            .field("transactions", &self.num_cols)
            .field("batches", &self.window.num_batches())
            .field("disk_backed", &self.is_disk_backed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_types::Transaction;

    /// The nine graphs of the paper's Figure 1, as transactions over the edge
    /// symbols a..f, grouped into batches of three.
    fn paper_batches() -> Vec<Batch> {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ]
    }

    fn matrix(backend: StorageBackend) -> DsMatrix {
        DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(2).unwrap(),
            backend,
            6,
        ))
        .unwrap()
    }

    fn row_string(m: &mut DsMatrix, item: u32) -> String {
        let row = m.row(EdgeId::new(item)).unwrap();
        (0..row.len())
            .map(|i| if row.get(i) { '1' } else { '0' })
            .collect()
    }

    #[test]
    fn matches_paper_example_1_after_two_batches() {
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut m = matrix(backend);
            let batches = paper_batches();
            m.ingest_batch(&batches[0]).unwrap();
            m.ingest_batch(&batches[1]).unwrap();

            assert_eq!(m.num_transactions(), 6);
            assert_eq!(m.boundaries(), vec![3, 6]);
            // DSMatrix capturing E1–E6 (Example 1).
            assert_eq!(row_string(&mut m, 0), "011111", "row a");
            assert_eq!(row_string(&mut m, 1), "000001", "row b");
            assert_eq!(row_string(&mut m, 2), "101101", "row c");
            assert_eq!(row_string(&mut m, 3), "100110", "row d");
            assert_eq!(row_string(&mut m, 4), "010010", "row e");
            assert_eq!(row_string(&mut m, 5), "111110", "row f");
        }
    }

    #[test]
    fn matches_paper_example_1_after_window_slide() {
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut m = matrix(backend);
            for batch in paper_batches() {
                m.ingest_batch(&batch).unwrap();
            }
            assert_eq!(m.num_transactions(), 6);
            assert_eq!(m.boundaries(), vec![3, 6]);
            // DSMatrix capturing E4–E9 (Example 1 after the slide).
            assert_eq!(row_string(&mut m, 0), "111110", "row a");
            assert_eq!(row_string(&mut m, 1), "001001", "row b");
            assert_eq!(row_string(&mut m, 2), "101111", "row c");
            assert_eq!(row_string(&mut m, 3), "110011", "row d");
            assert_eq!(row_string(&mut m, 4), "010000", "row e");
            assert_eq!(row_string(&mut m, 5), "110110", "row f");
        }
    }

    #[test]
    fn singleton_supports_match_example_5() {
        let mut m = matrix(StorageBackend::Memory);
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        let supports = m.singleton_supports().unwrap();
        let expected = [5u64, 2, 5, 4, 1, 4]; // a, b, c, d, e, f
        for (idx, &want) in expected.iter().enumerate() {
            assert_eq!(supports[idx].1, want, "support of row {idx}");
        }
    }

    #[test]
    fn projection_matches_example_2() {
        let mut m = matrix(StorageBackend::Memory);
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        // {a}-projected database: {c,d,f}, {d,e,f}, {b,c}, {c,f}, {c,d,f}
        // (with the two identical suffixes merged).
        let db = m.project(EdgeId::new(0)).unwrap();
        let total: Support = db.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        let as_strings: Vec<(String, Support)> = db
            .iter()
            .map(|(items, c)| (items.iter().map(|e| e.symbol()).collect::<String>(), *c))
            .collect();
        assert!(as_strings.contains(&("cdf".to_string(), 2)));
        assert!(as_strings.contains(&("def".to_string(), 1)));
        assert!(as_strings.contains(&("bc".to_string(), 1)));
        assert!(as_strings.contains(&("cf".to_string(), 1)));

        // {b}-projected database: {c} and {c,d} (Example 2).
        let db_b = m.project(EdgeId::new(1)).unwrap();
        let as_strings: Vec<(String, Support)> = db_b
            .iter()
            .map(|(items, c)| (items.iter().map(|e| e.symbol()).collect::<String>(), *c))
            .collect();
        assert_eq!(as_strings.len(), 2);
        assert!(as_strings.contains(&("c".to_string(), 1)));
        assert!(as_strings.contains(&("cd".to_string(), 1)));

        // Projecting the last edge yields an empty database.
        assert!(m.project(EdgeId::new(5)).unwrap().is_empty());
    }

    #[test]
    fn column_reconstructs_transactions() {
        let mut m = matrix(StorageBackend::Memory);
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        // After the slide, column 0 is E4 = {a,c,d,f}.
        assert_eq!(m.column(0).unwrap().to_string(), "{a,c,d,f}");
        // Column 5 is E9 = {b,c,d}.
        assert_eq!(m.column(5).unwrap().to_string(), "{b,c,d}");
        assert!(m.column(6).is_err());
    }

    #[test]
    fn new_edges_in_later_batches_get_padded_rows() {
        let mut m = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(3).unwrap(),
            StorageBackend::Memory,
            0,
        ))
        .unwrap();
        m.ingest_batch(&Batch::from_transactions(
            0,
            vec![Transaction::from_raw([0])],
        ))
        .unwrap();
        m.ingest_batch(&Batch::from_transactions(
            1,
            vec![Transaction::from_raw([2])],
        ))
        .unwrap();
        assert_eq!(m.num_items(), 3);
        assert_eq!(row_string(&mut m, 2), "01", "row created late is padded");
        assert_eq!(row_string(&mut m, 1), "00", "never-seen edge is all zeros");
        assert_eq!(m.support(EdgeId::new(0)).unwrap(), 1);
    }

    #[test]
    fn unknown_rows_read_as_zero() {
        let mut m = matrix(StorageBackend::Memory);
        m.ingest_batch(&paper_batches()[0]).unwrap();
        assert_eq!(m.support(EdgeId::new(40)).unwrap(), 0);
        assert_eq!(m.row(EdgeId::new(40)).unwrap().len(), 3);
    }

    #[test]
    fn disk_backend_keeps_rows_off_heap() {
        let mut m = matrix(StorageBackend::DiskTemp);
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        assert!(m.is_disk_backed());
        assert!(m.on_disk_bytes() > 0);
        assert!(
            m.resident_bytes() < 4096,
            "resident footprint is only bookkeeping, got {}",
            m.resident_bytes()
        );
        // An in-memory matrix of the same contents keeps its payload resident.
        let mut mem = matrix(StorageBackend::Memory);
        for batch in paper_batches() {
            mem.ingest_batch(&batch).unwrap();
        }
        assert!(!mem.is_disk_backed());
        assert_eq!(mem.on_disk_bytes(), 0);
        assert!(mem.resident_bytes() > 0);
    }

    #[test]
    fn budgeted_disk_views_read_only_the_slide_and_assemble_nothing() {
        // The same stream through an uncached (budget 0) and a budgeted disk
        // matrix: rows stay byte-identical at every step, but the budgeted
        // matrix serves its views from pinned chunks — zero words assembled —
        // and once the window is warm it fetches only the chunks the slide
        // invalidated, while budget 0 reproduces the fully eager per-mine
        // read pattern.
        let config = |budget: usize| {
            DsMatrixConfig::new(WindowConfig::new(2).unwrap(), StorageBackend::DiskTemp, 6)
                .with_cache_budget(budget)
        };
        let mut eager = DsMatrix::new(config(0)).unwrap();
        let mut budgeted = DsMatrix::new(config(usize::MAX)).unwrap();
        assert_eq!(eager.cache_budget(), 0);
        assert_eq!(budgeted.cache_budget(), usize::MAX);

        let patterns = paper_batches();
        for round in 0..6u64 {
            let batch = Batch::from_transactions(
                round,
                patterns[(round % 3) as usize].iter().cloned().collect(),
            );
            let captured_before = budgeted.capture_stats().rows_written;
            eager.ingest_batch(&batch).unwrap();
            budgeted.ingest_batch(&batch).unwrap();
            let slide_rows = budgeted.capture_stats().rows_written - captured_before;

            let cols = if round == 0 { 3 } else { 6 };
            let expected: Vec<String> = (0..6).map(|item| row_string(&mut eager, item)).collect();
            let (e0, b0) = (eager.read_stats(), budgeted.read_stats());
            {
                let eager_view = eager.view().unwrap();
                assert_eq!(eager_view.num_transactions(), cols);
            }
            {
                // The budgeted view serves every row from pinned chunks and
                // agrees with the eager ground truth bit for bit.
                let view = budgeted.view().unwrap();
                for (item, want) in expected.iter().enumerate() {
                    let mut assembled = BitVec::new();
                    view.row(EdgeId::new(item as u32))
                        .unwrap()
                        .assemble_into(&mut assembled);
                    assembled.resize(view.num_transactions());
                    let mut from_view = String::new();
                    for i in 0..assembled.len() {
                        from_view.push(if assembled.get(i) { '1' } else { '0' });
                    }
                    assert_eq!(&from_view, want, "row {item} diverged on round {round}");
                }
            }
            budgeted.trim_cache();
            let (e1, b1) = (eager.read_stats(), budgeted.read_stats());

            assert_eq!(
                b1.words_assembled - b0.words_assembled,
                0,
                "round {round}: pinned views must assemble nothing"
            );
            assert_eq!(
                b1.rows_pinned - b0.rows_pinned,
                6,
                "round {round}: every row must be served from pinned chunks"
            );
            assert!(
                e1.words_assembled > e0.words_assembled,
                "round {round}: budget 0 still pays the eager assembly"
            );
            assert_eq!(e1.rows_pinned, 0, "budget 0 never pins");
            assert_eq!(e1.cache_hits, 0, "budget 0 never hits");
            let eager_pages = e1.pages_read - e0.pages_read;
            let budgeted_pages = b1.pages_read - b0.pages_read;
            if round == 0 {
                assert_eq!(eager_pages, budgeted_pages, "cold caches read alike");
            } else {
                // Steady state: pages fetched per view are bounded by the
                // rows the slide touched (each paper chunk fits one page).
                assert!(
                    budgeted_pages <= slide_rows,
                    "round {round}: {budgeted_pages} pages > {slide_rows} slide rows"
                );
                assert!(
                    eager_pages > budgeted_pages,
                    "round {round}: the budgeted view must fetch fewer pages"
                );
            }
        }
        assert!(budgeted.read_stats().cache_hits > 0);
    }

    #[test]
    fn partial_pin_budgets_fall_back_per_row_and_stay_correct() {
        // A budget that holds some rows' chunks but not all: pinned and
        // fallback rows coexist in one view, and both agree with the eager
        // ground truth.
        let mut m = DsMatrix::new(
            DsMatrixConfig::new(WindowConfig::new(2).unwrap(), StorageBackend::DiskTemp, 6)
                .with_cache_budget(600),
        )
        .unwrap();
        let mut reference = matrix(StorageBackend::DiskTemp);
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
            reference.ingest_batch(&batch).unwrap();
        }
        let expected: Vec<String> = (0..6)
            .map(|item| row_string(&mut reference, item))
            .collect();
        let stats = {
            let view = m.view().unwrap();
            for (item, want) in expected.iter().enumerate() {
                let got: String = (0..view.num_transactions())
                    .map(|col| {
                        if view.get(EdgeId::new(item as u32), col) {
                            '1'
                        } else {
                            '0'
                        }
                    })
                    .collect();
                assert_eq!(&got, want, "row {item}");
            }
            m.read_stats()
        };
        m.trim_cache();
        assert!(
            stats.rows_pinned > 0,
            "a 600-byte budget should pin at least one row"
        );
        assert!(
            stats.rows_assembled > 0,
            "a 600-byte budget should also overflow into the fallback"
        );
    }

    /// Satellite regression: `words_assembled` is counted in 64-bit words of
    /// materialised payload on every path — exact values for a known window,
    /// so a future bits-vs-words mixup cannot slip through.
    #[test]
    fn read_word_accounting_is_exact_for_a_known_window() {
        // Window: 2 batches of 70 + 64 columns = 134 columns, 3 known rows
        // (expected_edges 3).  A full 134-bit row is ceil(134/64) = 3 words.
        let columns = [70usize, 64];
        let window_words = 3u64;
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut m = DsMatrix::new(DsMatrixConfig::new(
                WindowConfig::new(2).unwrap(),
                backend.clone(),
                3,
            ))
            .unwrap();
            for (id, cols) in columns.iter().enumerate() {
                let transactions: Vec<Transaction> = (0..*cols)
                    .map(|c| Transaction::from_raw([(c % 3) as u32]))
                    .collect();
                m.ingest_batch(&Batch::from_transactions(id as u64, transactions))
                    .unwrap();
            }
            assert_eq!(m.num_transactions(), 134);

            // row(): one row, ceil(134/64) words — known and unknown edges
            // alike (both materialise a 134-bit flat row).
            let base = m.read_stats();
            m.row(EdgeId::new(0)).unwrap();
            m.row(EdgeId::new(40)).unwrap();
            let after_rows = m.read_stats();
            assert_eq!(after_rows.rows_assembled - base.rows_assembled, 2);
            assert_eq!(
                after_rows.words_assembled - base.words_assembled,
                2 * window_words
            );

            // snapshot(): every known row once.
            m.snapshot().unwrap();
            let after_snapshot = m.read_stats();
            assert_eq!(after_snapshot.rows_assembled - after_rows.rows_assembled, 3);
            assert_eq!(
                after_snapshot.words_assembled - after_rows.words_assembled,
                3 * window_words
            );

            // view(): zero words on the memory backend (borrowed), one full
            // eager assembly at budget 0 on disk.
            let before_view = m.read_stats();
            m.view().unwrap();
            let after_view = m.read_stats();
            let expected_view_words = if m.is_disk_backed() {
                3 * window_words
            } else {
                0
            };
            assert_eq!(
                after_view.words_assembled - before_view.words_assembled,
                expected_view_words,
                "{backend:?}"
            );

            // column(): disk reads one chunk per row of the owning segment —
            // the 70-column segment holds 3 rows of ceil(70/64) = 2 words.
            let before_column = m.read_stats();
            m.column(0).unwrap();
            let after_column = m.read_stats();
            let expected_column_words = if m.is_disk_backed() { 3 * 2 } else { 0 };
            assert_eq!(
                after_column.words_assembled - before_column.words_assembled,
                expected_column_words,
                "{backend:?}"
            );
        }
    }

    #[test]
    fn tracker_reports_resident_bytes() {
        let tracker = MemoryTracker::new();
        let mut m = matrix(StorageBackend::Memory);
        m.set_tracker(tracker.clone());
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        assert!(tracker.peak_of(DsMatrix::TRACK_CATEGORY) > 0);
    }

    #[test]
    fn empty_matrix_reports_sane_values() {
        let m = matrix(StorageBackend::Memory);
        assert!(m.is_empty());
        assert_eq!(m.num_transactions(), 0);
        assert!(m.boundaries().is_empty());
        assert_eq!(m.num_batches(), 0);
    }

    fn durable_config(dir: &std::path::Path, every: usize) -> DsMatrixConfig {
        DsMatrixConfig::new(WindowConfig::new(2).unwrap(), StorageBackend::DiskTemp, 6)
            .with_durability(DurabilityConfig::new(dir).with_checkpoint_every(every))
    }

    fn all_rows(m: &mut DsMatrix) -> Vec<String> {
        (0..6).map(|i| row_string(m, i)).collect()
    }

    #[test]
    fn durability_rejects_memory_backend_and_zero_interval() {
        let dir = fsm_storage::TempDir::new("durable-cfg").unwrap();
        let cfg = DsMatrixConfig::new(WindowConfig::new(2).unwrap(), StorageBackend::Memory, 6)
            .with_durability(DurabilityConfig::new(dir.path()));
        assert!(matches!(
            DsMatrix::new(cfg),
            Err(FsmError::InvalidConfig(_))
        ));

        let cfg = durable_config(dir.path(), 0);
        assert!(matches!(
            DsMatrix::new(cfg),
            Err(FsmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn non_durable_matrix_pays_no_durability_cost() {
        let mut m = matrix(StorageBackend::DiskTemp);
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        let stats = m.read_stats();
        assert!(!m.is_durable());
        assert_eq!(stats.wal_bytes_written, 0);
        assert_eq!(stats.fsyncs, 0);
        assert_eq!(stats.checkpoint_bytes, 0);
        assert_eq!(stats.recovery_replayed_batches, 0);
    }

    #[test]
    fn durable_ingest_matches_volatile_and_counts_durability() {
        let dir = fsm_storage::TempDir::new("durable-ingest").unwrap();
        let mut durable = DsMatrix::new(durable_config(dir.path(), 2)).unwrap();
        let mut volatile = matrix(StorageBackend::Memory);
        for batch in paper_batches() {
            durable.ingest_batch(&batch).unwrap();
            volatile.ingest_batch(&batch).unwrap();
        }
        assert!(durable.is_durable());
        assert_eq!(all_rows(&mut durable), all_rows(&mut volatile));
        let stats = durable.read_stats();
        // One WAL record + fsync per ingested batch, at least one checkpoint.
        assert!(stats.wal_bytes_written > 0);
        assert!(stats.fsyncs >= 3);
        assert!(stats.checkpoint_bytes > 0);
        assert_eq!(stats.recovery_replayed_batches, 0);
    }

    #[test]
    fn recover_rebuilds_the_exact_window() {
        let dir = fsm_storage::TempDir::new("durable-recover").unwrap();
        // Checkpoint every 2 slides: the third batch lives only in the WAL.
        let expected = {
            let mut m = DsMatrix::new(durable_config(dir.path(), 2)).unwrap();
            for batch in paper_batches() {
                m.ingest_batch(&batch).unwrap();
            }
            all_rows(&mut m)
            // Dropped without any shutdown checkpoint — like a crash, except
            // the files are all intact.
        };
        let mut recovered = DsMatrix::recover(durable_config(dir.path(), 2)).unwrap();
        assert_eq!(all_rows(&mut recovered), expected);
        let report = recovered.recovery_report().unwrap().clone();
        assert_eq!(report.checkpoint_seq, Some(2));
        assert_eq!(report.replayed_batches, 1);
        assert_eq!(report.wal_torn, None);
        assert!(report.skipped_artifacts.is_empty());
        assert_eq!(recovered.last_batch_id(), Some(2));
        assert_eq!(recovered.read_stats().recovery_replayed_batches, 1);

        // Recovery is repeatable (it mutates nothing it then depends on).
        let mut again = DsMatrix::recover(durable_config(dir.path(), 2)).unwrap();
        assert_eq!(all_rows(&mut again), expected);
    }

    #[test]
    fn recover_without_any_checkpoint_replays_the_full_wal() {
        let dir = fsm_storage::TempDir::new("durable-nockpt").unwrap();
        let expected = {
            // Huge interval: no checkpoint is ever written.
            let mut m = DsMatrix::new(durable_config(dir.path(), 100)).unwrap();
            for batch in paper_batches() {
                m.ingest_batch(&batch).unwrap();
            }
            all_rows(&mut m)
        };
        let mut recovered = DsMatrix::recover(durable_config(dir.path(), 100)).unwrap();
        assert_eq!(all_rows(&mut recovered), expected);
        let report = recovered.recovery_report().unwrap();
        assert_eq!(report.checkpoint_seq, None);
        assert_eq!(report.replayed_batches, 3);
    }

    #[test]
    fn recover_rejects_window_size_mismatch() {
        let dir = fsm_storage::TempDir::new("durable-mismatch").unwrap();
        let mut m = DsMatrix::new(durable_config(dir.path(), 1)).unwrap();
        for batch in paper_batches() {
            m.ingest_batch(&batch).unwrap();
        }
        drop(m);
        let cfg = DsMatrixConfig::new(WindowConfig::new(3).unwrap(), StorageBackend::DiskTemp, 6)
            .with_durability(DurabilityConfig::new(dir.path()).with_checkpoint_every(1));
        assert!(matches!(
            DsMatrix::recover(cfg),
            Err(FsmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn new_durable_matrix_is_a_fresh_start() {
        let dir = fsm_storage::TempDir::new("durable-fresh").unwrap();
        {
            let mut m = DsMatrix::new(durable_config(dir.path(), 1)).unwrap();
            for batch in paper_batches() {
                m.ingest_batch(&batch).unwrap();
            }
        }
        // Re-creating (not recovering) wipes the previous state.
        let m = DsMatrix::new(durable_config(dir.path(), 1)).unwrap();
        assert!(m.is_empty());
        drop(m);
        let recovered = DsMatrix::recover(durable_config(dir.path(), 1)).unwrap();
        assert!(recovered.is_empty());
    }

    #[test]
    fn governed_matrices_share_one_cap_and_read_identically() {
        let governor = fsm_storage::BudgetGovernor::new(1200);
        let build = |gov: Option<&std::sync::Arc<fsm_storage::BudgetGovernor>>| {
            let mut config =
                DsMatrixConfig::new(WindowConfig::new(2).unwrap(), StorageBackend::DiskTemp, 6)
                    .with_cache_budget(usize::MAX);
            if let Some(gov) = gov {
                config = config.with_budget_governor(std::sync::Arc::clone(gov));
            }
            DsMatrix::new(config).unwrap()
        };
        let mut a = build(Some(&governor));
        // A lone governed tenant may use the whole cap.
        a.ingest_batch(&paper_batches()[0]).unwrap();
        assert_eq!(a.cache_budget(), 1200);
        // A second tenant halves the pie; both converge to fair shares at
        // their next ingest/view boundary.
        let mut b = build(Some(&governor));
        for batch in paper_batches() {
            a.ingest_batch(&batch).unwrap();
            b.ingest_batch(&batch).unwrap();
        }
        assert_eq!(b.cache_budget(), 600);
        assert_eq!(a.cache_budget(), 600);
        assert!(governor.granted_bytes() <= 1200);
        // Budget arbitration must never change what reads return.
        let mut ungoverned = build(None);
        for batch in paper_batches() {
            ungoverned.ingest_batch(&batch).unwrap();
        }
        for item in 0..6 {
            assert_eq!(
                row_string(&mut a, item),
                row_string(&mut ungoverned, item),
                "row {item}"
            );
        }
        // A departing tenant's share flows back.
        drop(b);
        a.ingest_batch(&paper_batches()[0]).unwrap();
        assert_eq!(a.cache_budget(), 1200);
    }

    #[test]
    fn memory_backend_ignores_the_governor() {
        let governor = fsm_storage::BudgetGovernor::new(1 << 20);
        let config = DsMatrixConfig::new(WindowConfig::new(2).unwrap(), StorageBackend::Memory, 6)
            .with_cache_budget(usize::MAX)
            .with_budget_governor(std::sync::Arc::clone(&governor));
        let mut m = DsMatrix::new(config).unwrap();
        m.ingest_batch(&paper_batches()[0]).unwrap();
        assert_eq!(governor.members(), 0, "memory matrices never register");
        assert_eq!(m.cache_budget(), 0);
    }
}
