//! Durability plumbing for the disk-backed [`crate::DsMatrix`].
//!
//! The protocol is classic WAL-before-apply, specialised to the fact that
//! window segments are *immutable files*:
//!
//! 1. `ingest_batch` first appends the encoded batch to the WAL and `fsync`s
//!    it (one record, one fsync per commit), and only then mutates any state.
//! 2. Segment files created since the last checkpoint are `fsync`ed lazily —
//!    at checkpoint time, not per batch — because the WAL can always re-create
//!    them by replay.
//! 3. Every K slides a [`fsm_storage::Checkpoint`] snapshots the window
//!    *metadata* (segment list + row indexes + support counters; never row
//!    payloads), the two newest checkpoints are retained, and the WAL is
//!    pruned only up to the **older** retained checkpoint — so if the newest
//!    checkpoint file is ever found corrupt, the older one plus the retained
//!    WAL suffix still reaches the exact pre-crash window.
//! 4. Evicted segment files are not unlinked immediately: a retained
//!    checkpoint may still reference them.  Their removal is deferred until a
//!    later checkpoint proves them unreferenced.
//!
//! [`crate::DsMatrix::recover`] inverts the protocol: newest checkpoint that
//! loads *and* whose segment pages verify wins, the WAL tail past it is
//! replayed through the ordinary ingest path, and a [`RecoveryReport`] names
//! every artifact that had to be distrusted along the way.

use std::collections::BTreeSet;
use std::path::PathBuf;

use fsm_storage::Wal;
use fsm_types::{Batch, FsmError, Result, Transaction};

/// Durability knobs of a [`crate::DsMatrixConfig`].
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the WAL, the checkpoints and the segment files
    /// (under `segments/`).  Must be dedicated to one matrix.
    pub dir: PathBuf,
    /// Checkpoint every this many slides (K).  Smaller values bound recovery
    /// replay tighter at the cost of more checkpoint writes.
    pub checkpoint_every: usize,
}

impl DurabilityConfig {
    /// Default checkpoint interval (slides between checkpoints).
    pub const DEFAULT_CHECKPOINT_EVERY: usize = 8;

    /// Durability rooted at `dir` with the default checkpoint interval.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            checkpoint_every: Self::DEFAULT_CHECKPOINT_EVERY,
        }
    }

    /// Overrides the checkpoint interval.
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Path of the write-ahead log inside the durable directory.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("wal.log")
    }

    /// Directory the segment files live in.
    pub fn segments_dir(&self) -> PathBuf {
        self.dir.join("segments")
    }
}

/// What [`crate::DsMatrix::recover`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// WAL sequence number of the checkpoint recovery restarted from
    /// (`None` if it rebuilt from an empty window).
    pub checkpoint_seq: Option<u64>,
    /// Batches replayed from the WAL tail.
    pub replayed_batches: u64,
    /// Torn-tail truncation performed on the WAL, if any (artifact + reason).
    pub wal_torn: Option<String>,
    /// Artifacts that were found damaged and skipped (each entry names the
    /// artifact and why it was rejected).  Non-empty means recovery fell back
    /// past the newest checkpoint.
    pub skipped_artifacts: Vec<String>,
}

/// Live durability state of a durable [`crate::DsMatrix`].
pub(crate) struct DurableState {
    pub(crate) config: DurabilityConfig,
    pub(crate) wal: Wal,
    /// WAL sequence number of the last batch applied to the matrix.
    pub(crate) applied_seq: u64,
    /// Sequence of the newest on-disk checkpoint.
    pub(crate) last_ckpt_seq: Option<u64>,
    /// Sequence of the previous retained checkpoint (WAL is pruned up to
    /// here, never further).
    pub(crate) prev_ckpt_seq: Option<u64>,
    /// Segment uids referenced by the newest checkpoint.
    pub(crate) last_ckpt_uids: BTreeSet<u64>,
    /// Segment uids referenced by the previous retained checkpoint.
    pub(crate) prev_ckpt_uids: BTreeSet<u64>,
    /// Evicted segment files whose unlink is deferred until a checkpoint
    /// proves them unreferenced.
    pub(crate) garbage: Vec<(u64, PathBuf)>,
    /// Slides since the last checkpoint.
    pub(crate) slides_since_ckpt: usize,
    /// Segments with uid below this were fsynced by an earlier checkpoint.
    pub(crate) synced_uid_watermark: u64,
    /// Cumulative bytes of checkpoint files written.
    pub(crate) checkpoint_bytes: u64,
    /// Cumulative `fsync`s beyond the WAL's own (segment + checkpoint syncs).
    pub(crate) extra_fsyncs: u64,
    /// Batches replayed by recovery (0 for a fresh durable matrix).
    pub(crate) recovery_replayed: u64,
    /// Report of the recovery that produced this state, if any.
    pub(crate) report: Option<RecoveryReport>,
}

impl DurableState {
    /// State of a freshly created (empty, not recovered) durable matrix.
    pub(crate) fn fresh(config: DurabilityConfig, wal: Wal) -> Self {
        Self {
            config,
            wal,
            applied_seq: 0,
            last_ckpt_seq: None,
            prev_ckpt_seq: None,
            last_ckpt_uids: BTreeSet::new(),
            prev_ckpt_uids: BTreeSet::new(),
            garbage: Vec::new(),
            slides_since_ckpt: 0,
            synced_uid_watermark: 0,
            checkpoint_bytes: 0,
            extra_fsyncs: 0,
            recovery_replayed: 0,
            report: None,
        }
    }
}

/// Encodes a batch as a WAL record payload.
///
/// Layout (all little-endian): `batch id (u64)`, `transaction count (u32)`,
/// then per transaction `edge count (u32)` followed by the raw `u32` edge
/// identifiers in canonical order.  Integrity comes from the WAL record's
/// CRC; this encoding carries no checksum of its own.
pub fn encode_batch(batch: &Batch) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + batch.total_edge_occurrences() * 4);
    out.extend_from_slice(&batch.id.to_le_bytes());
    out.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for transaction in batch.iter() {
        out.extend_from_slice(&(transaction.len() as u32).to_le_bytes());
        for edge in transaction.iter() {
            out.extend_from_slice(&(edge.index() as u32).to_le_bytes());
        }
    }
    out
}

/// Decodes a WAL record payload back into a batch.
pub fn decode_batch(payload: &[u8]) -> Result<Batch> {
    let mut offset = 0usize;
    let take = |offset: &mut usize, n: usize| -> Result<&[u8]> {
        let end = *offset + n;
        if end > payload.len() {
            return Err(FsmError::corrupt_artifact(
                "wal batch payload",
                format!("truncated at byte {} of {}", *offset, payload.len()),
            ));
        }
        let bytes = &payload[*offset..end];
        *offset = end;
        Ok(bytes)
    };
    let id = u64::from_le_bytes(take(&mut offset, 8)?.try_into().expect("8-byte slice"));
    let num_tx = u32::from_le_bytes(take(&mut offset, 4)?.try_into().expect("4-byte slice"));
    let mut transactions = Vec::with_capacity(num_tx.min(1 << 20) as usize);
    for _ in 0..num_tx {
        let num_edges = u32::from_le_bytes(take(&mut offset, 4)?.try_into().expect("4-byte slice"));
        let mut edges = Vec::with_capacity(num_edges.min(1 << 20) as usize);
        for _ in 0..num_edges {
            edges.push(u32::from_le_bytes(
                take(&mut offset, 4)?.try_into().expect("4-byte slice"),
            ));
        }
        transactions.push(Transaction::from_raw(edges));
    }
    if offset != payload.len() {
        return Err(FsmError::corrupt_artifact(
            "wal batch payload",
            format!("{} trailing bytes", payload.len() - offset),
        ));
    }
    Ok(Batch::from_transactions(id, transactions))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_encoding_roundtrip() {
        let batch = Batch::from_transactions(
            42,
            vec![
                Transaction::from_raw([3, 1, 4]),
                Transaction::from_raw([]),
                Transaction::from_raw([1, 5, 9, 2, 6]),
            ],
        );
        let encoded = encode_batch(&batch);
        assert_eq!(decode_batch(&encoded).unwrap(), batch);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let batch = Batch::new(7);
        assert_eq!(decode_batch(&encode_batch(&batch)).unwrap(), batch);
    }

    #[test]
    fn truncated_and_padded_payloads_are_rejected() {
        let encoded = encode_batch(&Batch::from_transactions(
            1,
            vec![Transaction::from_raw([0, 1])],
        ));
        assert!(decode_batch(&encoded[..encoded.len() - 1]).is_err());
        assert!(decode_batch(&encoded[..5]).is_err());
        let mut padded = encoded.clone();
        padded.push(0);
        assert!(decode_batch(&padded).is_err());
    }

    #[test]
    fn durability_config_paths() {
        let cfg = DurabilityConfig::new("/tmp/x").with_checkpoint_every(3);
        assert_eq!(cfg.checkpoint_every, 3);
        assert_eq!(cfg.wal_path(), PathBuf::from("/tmp/x/wal.log"));
        assert_eq!(cfg.segments_dir(), PathBuf::from("/tmp/x/segments"));
    }
}
