//! Window-slide semantics and cost of the incremental (segmented) DSMatrix.
//!
//! The incremental capture path must be observationally identical to the old
//! full-rewrite implementation — every row of the live window reads back bit
//! for bit as if each slide had rewritten the whole matrix — while writing
//! only `O(rows touched by the batch + evicted columns)`.  A shadow model
//! (the window's batches replayed naively) pins the semantics; the
//! [`DsMatrix::capture_stats`] word counter pins the cost.

use std::collections::VecDeque;

use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
use fsm_storage::StorageBackend;
use fsm_stream::WindowConfig;
use fsm_types::{Batch, EdgeId, Transaction};
use proptest::prelude::*;

fn batch(id: u64, transactions: &[&[u32]]) -> Batch {
    Batch::from_transactions(
        id,
        transactions
            .iter()
            .map(|t| Transaction::from_raw(t.iter().copied()))
            .collect(),
    )
}

fn matrix(window: usize, backend: StorageBackend, expected: usize) -> DsMatrix {
    DsMatrix::new(DsMatrixConfig::new(
        WindowConfig::new(window).unwrap(),
        backend,
        expected,
    ))
    .unwrap()
}

/// A naive full-rewrite reference: retains the window's batches and rebuilds
/// every row from scratch on demand.
#[derive(Default)]
struct ShadowMatrix {
    window: usize,
    batches: VecDeque<Batch>,
    num_items: usize,
}

impl ShadowMatrix {
    fn new(window: usize, expected: usize) -> Self {
        Self {
            window,
            batches: VecDeque::new(),
            num_items: expected,
        }
    }

    fn ingest(&mut self, batch: &Batch) {
        if self.batches.len() == self.window {
            self.batches.pop_front();
        }
        let max_edge = batch
            .iter()
            .flat_map(|t| t.iter())
            .map(|e| e.index() + 1)
            .max()
            .unwrap_or(0);
        self.num_items = self.num_items.max(max_edge);
        self.batches.push_back(batch.clone());
    }

    fn row_string(&self, item: u32) -> String {
        let edge = EdgeId::new(item);
        self.batches
            .iter()
            .flat_map(|b| b.iter())
            .map(|t| if t.contains(edge) { '1' } else { '0' })
            .collect()
    }

    fn num_cols(&self) -> usize {
        self.batches.iter().map(|b| b.len()).sum()
    }
}

fn row_string(m: &mut DsMatrix, item: u32) -> String {
    let row = m.row(EdgeId::new(item)).unwrap();
    (0..row.len())
        .map(|i| if row.get(i) { '1' } else { '0' })
        .collect()
}

/// Asserts that every row (including a few beyond the live domain) matches
/// the shadow model.
fn assert_matches_shadow(m: &mut DsMatrix, shadow: &ShadowMatrix) {
    assert_eq!(m.num_transactions(), shadow.num_cols());
    for item in 0..(shadow.num_items as u32 + 2) {
        assert_eq!(
            row_string(m, item),
            shadow.row_string(item),
            "row {item} diverged from full-rewrite semantics"
        );
    }
}

#[test]
fn batch_larger_than_the_rest_of_the_window() {
    for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
        let mut m = matrix(2, backend, 3);
        let mut shadow = ShadowMatrix::new(2, 3);
        let batches = [
            batch(0, &[&[0]]),
            // One batch holding more transactions than everything else the
            // window has seen.
            batch(1, &[&[0, 1], &[1], &[0, 2], &[2], &[0, 1, 2]]),
            batch(2, &[&[1]]),
        ];
        for b in &batches {
            m.ingest_batch(b).unwrap();
            shadow.ingest(b);
            assert_matches_shadow(&mut m, &shadow);
        }
        // After the slide the big batch dominates the window.
        assert_eq!(m.num_transactions(), 6);
        assert_eq!(m.boundaries(), vec![5, 6]);
    }
}

#[test]
fn empty_batches_slide_without_contributing_columns() {
    let mut m = matrix(2, StorageBackend::Memory, 2);
    let mut shadow = ShadowMatrix::new(2, 2);
    let batches = [
        batch(0, &[&[0], &[1]]),
        batch(1, &[]),
        batch(2, &[&[0, 1]]),
        batch(3, &[]),
    ];
    for b in &batches {
        let outcome = m.ingest_batch(b).unwrap();
        shadow.ingest(b);
        assert_matches_shadow(&mut m, &shadow);
        if b.id == 3 {
            // Evicting the empty batch 1 removes a zero-column segment.
            assert_eq!(outcome.evicted, Some((1, 0)));
        }
    }
    assert_eq!(m.num_transactions(), 1, "batch 2's single column remains");
    assert_eq!(m.num_batches(), 2);
}

#[test]
fn domain_growth_mid_stream_pads_old_columns() {
    for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
        let mut m = matrix(3, backend, 0);
        let mut shadow = ShadowMatrix::new(3, 0);
        let batches = [
            batch(0, &[&[0]]),
            batch(1, &[&[5], &[5, 9]]),
            batch(2, &[&[0, 9, 31]]),
        ];
        for b in &batches {
            m.ingest_batch(b).unwrap();
            shadow.ingest(b);
            assert_matches_shadow(&mut m, &shadow);
        }
        assert_eq!(m.num_items(), 32);
        // Rows born in the last batch read as zeros over the earlier columns.
        assert_eq!(row_string(&mut m, 31), "0001");
    }
}

#[test]
fn eviction_of_exactly_one_full_batch() {
    let mut m = matrix(2, StorageBackend::Memory, 3);
    let mut shadow = ShadowMatrix::new(2, 3);
    let batches = [
        batch(0, &[&[0], &[1], &[2]]),
        batch(1, &[&[0, 1]]),
        batch(2, &[&[2], &[2]]),
    ];
    m.ingest_batch(&batches[0]).unwrap();
    shadow.ingest(&batches[0]);
    m.ingest_batch(&batches[1]).unwrap();
    shadow.ingest(&batches[1]);
    assert_eq!(m.capture_stats().segments_dropped, 0);

    // The third batch evicts batch 0 — exactly its three columns, no more.
    let outcome = m.ingest_batch(&batches[2]).unwrap();
    shadow.ingest(&batches[2]);
    assert_eq!(outcome.evicted, Some((0, 3)));
    assert_eq!(m.capture_stats().segments_dropped, 1);
    assert_matches_shadow(&mut m, &shadow);
    assert_eq!(m.num_transactions(), 3);
}

/// The acceptance criterion of the incremental store: a slide writes words
/// proportional to the entering batch, never to the unevicted window prefix.
#[test]
fn slide_cost_is_independent_of_window_size() {
    let wide_batch = |id: u64| {
        // 4 transactions over 8 fixed edges.
        batch(id, &[&[0, 1], &[2, 3], &[4, 5], &[6, 7]])
    };
    let mut words_per_slide = Vec::new();
    for window in [2usize, 8, 32] {
        let mut m = matrix(window, StorageBackend::Memory, 8);
        // Fill the window, then measure one steady-state slide.
        for id in 0..window as u64 + 1 {
            m.ingest_batch(&wide_batch(id)).unwrap();
        }
        let before = m.capture_stats().words_written;
        m.ingest_batch(&wide_batch(window as u64 + 1)).unwrap();
        let after = m.capture_stats().words_written;
        words_per_slide.push(after - before);
    }
    assert_eq!(
        words_per_slide[0], words_per_slide[2],
        "a 16x larger window must not change the write cost of a slide: {words_per_slide:?}"
    );

    // And the cost is exactly the touched rows' chunks: 8 rows, each one
    // 4-bit chunk (1 word) plus its length header (1 word).
    assert_eq!(words_per_slide[0], 16);
}

/// The old implementation rewrote `rows x window columns` on every slide;
/// the counter proves the incremental store beats that bound by the window
/// factor.
#[test]
fn total_writes_scale_with_the_stream_not_with_window_times_stream() {
    let window = 16usize;
    let batches: Vec<Batch> = (0..64u64)
        .map(|id| batch(id, &[&[(id % 8) as u32], &[((id + 3) % 8) as u32]]))
        .collect();
    let mut m = matrix(window, StorageBackend::Memory, 8);
    for b in &batches {
        m.ingest_batch(b).unwrap();
    }
    let words = m.capture_stats().words_written;
    // Full-rewrite accounting: every slide re-serialises 8 rows of up to 32
    // columns (1 word + header) => 64 slides x 8 rows x 2 words = 1024.
    // Incremental: 64 slides x (at most 2 touched rows) x 2 words = 256.
    assert!(
        words <= 256,
        "{words} words written — unevicted prefixes are being rewritten"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On arbitrary streams (uneven batches, empty batches, growing domain),
    /// the segmented matrix reads back exactly what a full rewrite would
    /// produce, on both storage backends.
    #[test]
    fn incremental_capture_matches_full_rewrite_semantics(
        raw in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::btree_set(0u32..12, 0..5)
                    .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
                0..4,
            ),
            1..8,
        ),
        window in 1usize..4,
    ) {
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut m = matrix(window, backend, 0);
            let mut shadow = ShadowMatrix::new(window, 0);
            for (id, transactions) in raw.iter().enumerate() {
                let b = Batch::from_transactions(
                    id as u64,
                    transactions
                        .iter()
                        .map(|t| Transaction::from_raw(t.iter().copied()))
                        .collect(),
                );
                m.ingest_batch(&b).unwrap();
                shadow.ingest(&b);
                prop_assert_eq!(m.num_transactions(), shadow.num_cols());
                for item in 0..shadow.num_items as u32 {
                    prop_assert_eq!(
                        row_string(&mut m, item),
                        shadow.row_string(item),
                        "row {} after batch {}",
                        item,
                        id
                    );
                }
            }
        }
    }
}
