//! The zero-copy read path must be observationally identical to the eager
//! one.
//!
//! Three surfaces are pinned against each other on arbitrary slide
//! sequences (uneven batches, empty batches, growing domain, both storage
//! backends):
//!
//! * the incrementally-maintained row cache behind [`DsMatrix::view`] versus
//!   from-scratch assembly out of the segment store ([`DsMatrix::row`], the
//!   ground truth);
//! * [`WindowView::project_into`] / `singleton_supports` versus the eager
//!   [`RowSnapshot`] equivalents (byte-identical output);
//! * the segment-direct [`DsMatrix::column`] versus reading every row.
//!
//! A separate test forces the cache's amortised `drop_prefix` compaction and
//! checks the rows survive it, and the read-amplification counters are
//! asserted directly: steady-state view construction on the memory backend
//! materialises zero words.

use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
use fsm_storage::StorageBackend;
use fsm_stream::WindowConfig;
use fsm_types::{Batch, EdgeId, Transaction};
use proptest::prelude::*;

fn matrix(window: usize, backend: StorageBackend, expected: usize) -> DsMatrix {
    DsMatrix::new(DsMatrixConfig::new(
        WindowConfig::new(window).unwrap(),
        backend,
        expected,
    ))
    .unwrap()
}

/// The backend/budget corners every consistency check runs on: zero-copy
/// memory, fully-eager disk (budget 0), the pinned-chunk path under eviction
/// pressure (tiny budget — most rows fall back) and with the whole working
/// set pinned (unlimited budget — zero assembly).
fn corner_matrices(window: usize, expected: usize) -> Vec<DsMatrix> {
    let budgets = [600, usize::MAX];
    let mut matrices = vec![
        matrix(window, StorageBackend::Memory, expected),
        matrix(window, StorageBackend::DiskTemp, expected),
    ];
    for budget in budgets {
        matrices.push(
            DsMatrix::new(
                DsMatrixConfig::new(
                    WindowConfig::new(window).unwrap(),
                    StorageBackend::DiskTemp,
                    expected,
                )
                .with_cache_budget(budget),
            )
            .unwrap(),
        );
    }
    matrices
}

fn batch(id: u64, transactions: &[&[u32]]) -> Batch {
    Batch::from_transactions(
        id,
        transactions
            .iter()
            .map(|t| Transaction::from_raw(t.iter().copied()))
            .collect(),
    )
}

/// Renders item `item`'s window row as seen through the view.
fn view_row_string(m: &mut DsMatrix, item: u32) -> String {
    let view = m.view().unwrap();
    (0..view.num_transactions())
        .map(|col| {
            if view.get(EdgeId::new(item), col) {
                '1'
            } else {
                '0'
            }
        })
        .collect()
}

/// Renders item `item`'s window row assembled from the segment store — the
/// from-scratch reference the cache must match.
fn store_row_string(m: &mut DsMatrix, item: u32) -> String {
    let row = m.row(EdgeId::new(item)).unwrap();
    (0..row.len())
        .map(|i| if row.get(i) { '1' } else { '0' })
        .collect()
}

/// Pins every read surface of `m` against the eager reference.
fn assert_view_matches_eager(m: &mut DsMatrix) {
    let num_items = m.num_items();
    let num_cols = m.num_transactions();

    // 1. Cached rows equal from-scratch assembly (plus rows past the domain).
    for item in 0..(num_items as u32 + 2) {
        assert_eq!(
            view_row_string(m, item),
            store_row_string(m, item),
            "cached row {item} diverged from the segment store"
        );
    }

    // 2. Counter-maintained supports equal row popcounts; projection through
    //    the view is byte-identical to the eager snapshot's.
    let snapshot = m.snapshot().unwrap();
    let view = m.view().unwrap();
    assert_eq!(view.num_items(), num_items);
    assert_eq!(view.num_transactions(), num_cols);
    assert_eq!(
        view.singleton_supports(),
        snapshot.singleton_supports(),
        "supports diverged from the row sums"
    );
    for pivot in 0..(num_items as u32 + 2) {
        assert_eq!(
            view.project(EdgeId::new(pivot)),
            snapshot.project(EdgeId::new(pivot)),
            "projected database of pivot {pivot} diverged"
        );
    }

    // 3. Segment-direct columns equal the per-row reconstruction.
    for col in 0..num_cols {
        let from_rows: Vec<u32> = (0..num_items as u32)
            .filter(|&item| {
                m.row(EdgeId::new(item))
                    .map(|row| row.get(col))
                    .unwrap_or(false)
            })
            .collect();
        let from_segment: Vec<u32> = m.column(col).unwrap().iter().map(|e| e.0).collect();
        assert_eq!(from_segment, from_rows, "column {col} diverged");
    }
}

#[test]
fn view_matches_eager_reads_on_a_fixed_stream() {
    for mut m in corner_matrices(2, 6) {
        let batches = [
            batch(0, &[&[2, 3, 5], &[0, 4, 5], &[0, 2, 5]]),
            batch(1, &[&[0, 2, 3, 5], &[0, 3, 4, 5], &[0, 1, 2]]),
            batch(2, &[&[0, 2, 5], &[0, 2, 3, 5], &[1, 2, 3]]),
            batch(3, &[]),
            batch(4, &[&[7], &[0, 7]]),
        ];
        for b in &batches {
            m.ingest_batch(b).unwrap();
            assert_view_matches_eager(&mut m);
        }
    }
}

#[test]
fn steady_state_views_are_zero_copy_on_the_memory_backend() {
    let mut m = matrix(3, StorageBackend::Memory, 8);
    for id in 0..6u64 {
        m.ingest_batch(&batch(id, &[&[0, 1], &[2, 3], &[(id % 8) as u32]]))
            .unwrap();
        let before = m.read_stats().words_assembled;
        let view = m.view().unwrap();
        assert!(view.num_transactions() > 0);
        let _ = view;
        assert_eq!(
            m.read_stats().words_assembled,
            before,
            "memory-backend view construction must materialise nothing"
        );
    }
    // The disk backend pays the (counted) eager fallback instead.
    let mut disk = matrix(3, StorageBackend::DiskTemp, 8);
    disk.ingest_batch(&batch(0, &[&[0, 1], &[2, 3]])).unwrap();
    let before = disk.read_stats().words_assembled;
    let _ = disk.view().unwrap();
    assert!(
        disk.read_stats().words_assembled > before,
        "disk-backend views assemble rows and must say so"
    );
}

#[test]
fn cache_survives_prefix_compaction() {
    // One 80-column batch per slide with a window of 2 batches: the dead
    // prefix grows by 80 bits per slide and must cross the compaction
    // threshold several times over 20 slides.
    let mut m = matrix(2, StorageBackend::Memory, 4);
    for id in 0..20u64 {
        let edge = (id % 4) as u32;
        let transactions: Vec<Vec<u32>> = (0..80)
            .map(|t| {
                if t % 3 == 0 {
                    vec![edge, (edge + 1) % 4]
                } else {
                    vec![edge]
                }
            })
            .collect();
        let refs: Vec<&[u32]> = transactions.iter().map(|t| t.as_slice()).collect();
        m.ingest_batch(&batch(id, &refs)).unwrap();
        for item in 0..4 {
            assert_eq!(
                view_row_string(&mut m, item),
                store_row_string(&mut m, item),
                "row {item} after slide {id}"
            );
        }
    }
    assert!(
        m.read_stats().cache_compact_words > 0,
        "the compaction path was never exercised"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On arbitrary streams, the incrementally-maintained cache (and every
    /// other view surface) equals from-scratch assembly after every slide,
    /// on both storage backends.
    #[test]
    fn incremental_cache_matches_from_scratch_assembly(
        raw in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::btree_set(0u32..10, 0..4)
                    .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
                0..4,
            ),
            1..8,
        ),
        window in 1usize..4,
    ) {
        for mut m in corner_matrices(window, 0) {
            for (id, transactions) in raw.iter().enumerate() {
                let b = Batch::from_transactions(
                    id as u64,
                    transactions
                        .iter()
                        .map(|t| Transaction::from_raw(t.iter().copied()))
                        .collect(),
                );
                m.ingest_batch(&b).unwrap();
                for item in 0..m.num_items() as u32 {
                    prop_assert_eq!(
                        view_row_string(&mut m, item),
                        store_row_string(&mut m, item),
                        "row {} after batch {}",
                        item,
                        id
                    );
                }
                let snapshot = m.snapshot().unwrap();
                let expected_supports = snapshot.singleton_supports();
                let expected_projections: Vec<_> = (0..m.num_items() as u32)
                    .map(|p| snapshot.project(EdgeId::new(p)))
                    .collect();
                let view = m.view().unwrap();
                prop_assert_eq!(view.singleton_supports(), expected_supports);
                for (pivot, expected) in expected_projections.iter().enumerate() {
                    prop_assert_eq!(
                        &view.project(EdgeId::new(pivot as u32)),
                        expected,
                        "pivot {} after batch {}",
                        pivot,
                        id
                    );
                }
            }
        }
    }
}
