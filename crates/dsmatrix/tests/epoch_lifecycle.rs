//! Epoch reclamation shadow model: segment memory is freed exactly when the
//! last reader lets go, and never earlier.
//!
//! [`DsMatrix::snapshot_epoch`] hands out `Arc`-shared [`EpochSegment`]s, so
//! reclamation is plain reference counting: a segment's decoded bits stay
//! alive while it is inside the live window (the store itself holds an
//! `Arc` — directly on the memory backend, via the decode-once memo on
//! disk) **or** while any undropped snapshot still references it.  The
//! matrix's own epoch memo only ever references the current window's
//! segments and is invalidated by the next ingest, so it adds no liveness
//! beyond window membership.
//!
//! These tests pin that rule against a `HashMap` shadow model: `Weak`
//! probes are taken for every segment the moment a snapshot first exposes
//! it, an oracle tracks (external refcount, window membership) per segment
//! uid, and after every step — randomized drop orders, and drops randomly
//! interleaved with further slides — every probe's `upgrade()` must agree
//! with the oracle.  No segment may be reclaimed while referenced; every
//! segment must be reclaimed once its last reference drops.
//!
//! One documented deviation from a file-level model: on the disk backend
//! the *files* of a popped segment may be unlinked while snapshots still
//! hold its bits — snapshots are self-contained decoded data and never go
//! back to disk, so file lifetime is governed by durability alone.

use std::collections::HashMap;
use std::sync::{Arc, Weak};

use fsm_dsmatrix::{DsMatrix, DsMatrixConfig, EpochSnapshot};
use fsm_storage::{EpochSegment, StorageBackend};
use fsm_stream::WindowConfig;
use fsm_types::{Batch, Transaction};

const EDGES: usize = 6;
const WINDOW: usize = 3;

fn corners() -> Vec<(&'static str, StorageBackend, usize)> {
    vec![
        ("memory", StorageBackend::Memory, 0),
        ("disk budget=0", StorageBackend::DiskTemp, 0),
        ("disk budget=tiny", StorageBackend::DiskTemp, 600),
        ("disk budget=max", StorageBackend::DiskTemp, usize::MAX),
    ]
}

fn matrix(backend: StorageBackend, budget: usize) -> DsMatrix {
    DsMatrix::new(
        DsMatrixConfig::new(WindowConfig::new(WINDOW).unwrap(), backend, EDGES)
            .with_cache_budget(budget),
    )
    .unwrap()
}

/// Deterministic pseudo-random batch `id` (no external RNG crate).
fn batch(id: u64) -> Batch {
    let mut rng = Xorshift::new(id.wrapping_mul(0xA076_1D64_78BD_642F) | 1);
    let transactions = (0..1 + rng.below(3))
        .map(|_| {
            Transaction::from_raw((0..1 + rng.below(4)).map(|_| rng.below(EDGES as u64) as u32))
        })
        .collect();
    Batch::from_transactions(id, transactions)
}

struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D) % bound
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.below(i as u64 + 1) as usize);
        }
    }
}

/// The shadow model: per segment uid, a `Weak` probe plus the oracle's view
/// of its external snapshot refcount; window membership is passed per check.
#[derive(Default)]
struct Shadow {
    probes: HashMap<u64, Weak<EpochSegment>>,
    refs: HashMap<u64, usize>,
}

impl Shadow {
    /// Registers one held snapshot: probes for new segments, +1 refcount on
    /// every segment it references.  Returns the snapshot's uid list.
    fn acquire(&mut self, snapshot: &Arc<EpochSnapshot>) -> Vec<u64> {
        snapshot
            .segments()
            .iter()
            .map(|seg| {
                self.probes
                    .entry(seg.uid())
                    .or_insert_with(|| Arc::downgrade(seg));
                *self.refs.entry(seg.uid()).or_insert(0) += 1;
                seg.uid()
            })
            .collect()
    }

    /// Forgets one dropped snapshot (by its uid list): -1 refcount each.
    fn release(&mut self, uids: &[u64]) {
        for uid in uids {
            *self.refs.get_mut(uid).unwrap() -= 1;
        }
    }

    /// Every probe must agree with the oracle: alive iff still inside the
    /// live window or still referenced by an undropped snapshot.
    fn check(&self, window: &[u64], context: &str) {
        for (uid, probe) in &self.probes {
            let expected = window.contains(uid) || self.refs[uid] > 0;
            assert_eq!(
                probe.upgrade().is_some(),
                expected,
                "{context}: segment {uid} (in window: {}, external refs: {})",
                window.contains(uid),
                self.refs[uid]
            );
        }
    }
}

/// Slide a full stream holding every epoch's snapshot, then drop the
/// snapshots in a randomized order: a segment must survive exactly until
/// its last reader drops, and the snapshot *objects* themselves must die
/// with their last `Arc` — except the newest epoch's, which the matrix memo
/// keeps until the next ingest invalidates it.
#[test]
fn no_segment_outlives_its_last_reader() {
    const BATCHES: usize = 8;
    for (label, backend, budget) in corners() {
        for seed in 1u64..=4 {
            let mut m = matrix(backend.clone(), budget);
            let mut shadow = Shadow::default();
            let mut held: Vec<Option<(Arc<EpochSnapshot>, Vec<u64>)>> = Vec::new();
            let mut snapshot_probes: Vec<Weak<EpochSnapshot>> = Vec::new();
            for id in 0..BATCHES {
                m.ingest_batch(&batch(id as u64)).unwrap();
                let snap = m.snapshot_epoch().unwrap();
                snapshot_probes.push(Arc::downgrade(&snap));
                let uids = shadow.acquire(&snap);
                shadow.check(&uids, &format!("{label} seed={seed} after ingest {id}"));
                held.push(Some((snap, uids)));
            }
            let window: Vec<u64> = held.last().unwrap().as_ref().unwrap().1.clone();

            let mut order: Vec<usize> = (0..BATCHES).collect();
            Xorshift::new(seed).shuffle(&mut order);
            for idx in order {
                let (snap, uids) = held[idx].take().unwrap();
                drop(snap);
                shadow.release(&uids);
                shadow.check(&window, &format!("{label} seed={seed} after drop {idx}"));
                // The snapshot object itself: reclaimed with its last Arc,
                // except the newest epoch, which the matrix memo still holds.
                assert_eq!(
                    snapshot_probes[idx].upgrade().is_some(),
                    idx == BATCHES - 1,
                    "{label} seed={seed}: snapshot {idx} liveness after its drop"
                );
            }

            // The next ingest invalidates the memo: the newest epoch's
            // snapshot dies, the popped segment's last reference with it.
            m.ingest_batch(&batch(BATCHES as u64)).unwrap();
            assert!(
                snapshot_probes[BATCHES - 1].upgrade().is_none(),
                "{label} seed={seed}: the memo must not outlive the next ingest"
            );
            let survivors: Vec<u64> = window[1..].to_vec();
            shadow.check(
                &survivors,
                &format!("{label} seed={seed} after final ingest"),
            );

            // Dropping the matrix releases the window itself: nothing left.
            drop(m);
            shadow.check(&[], &format!("{label} seed={seed} after matrix drop"));
        }
    }
}

/// Drops interleaved at random with further slides: the shadow model must
/// hold at every intermediate state, not just after a clean separation of
/// "all ingests, then all drops".
#[test]
fn interleaved_slides_and_drops_follow_the_shadow_model() {
    const BATCHES: u64 = 10;
    for (label, backend, budget) in corners() {
        for seed in 1u64..=4 {
            let mut rng = Xorshift::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut m = matrix(backend.clone(), budget);
            let mut shadow = Shadow::default();
            let mut held: Vec<(Arc<EpochSnapshot>, Vec<u64>)> = Vec::new();
            let mut window: Vec<u64> = Vec::new();
            let mut next_id = 0u64;
            let mut step = 0usize;
            while next_id < BATCHES || !held.is_empty() {
                let ingest = next_id < BATCHES && (held.is_empty() || rng.below(2) == 0);
                if ingest {
                    m.ingest_batch(&batch(next_id)).unwrap();
                    next_id += 1;
                    let snap = m.snapshot_epoch().unwrap();
                    window = shadow.acquire(&snap);
                    held.push((snap, window.clone()));
                } else {
                    let idx = rng.below(held.len() as u64) as usize;
                    let (snap, uids) = held.swap_remove(idx);
                    drop(snap);
                    shadow.release(&uids);
                }
                shadow.check(&window, &format!("{label} seed={seed} step {step}"));
                step += 1;
            }
            drop(m);
            shadow.check(&[], &format!("{label} seed={seed} at the end"));
        }
    }
}
