//! Hibernate/thaw round-trips: the spill image must rebuild the window bit
//! for bit, on every backend, and keep behaving identically afterwards.
//!
//! The discipline mirrors the recovery suite: a thawed matrix is compared
//! row-by-row against the matrix that hibernated (and against it again after
//! both ingest the same suffix of the stream — a thaw must not perturb later
//! slides), and a damaged artifact must fail loudly, naming the file, never
//! serving a silently different window.

use fsm_dsmatrix::{DsMatrix, DsMatrixConfig, DurabilityConfig};
use fsm_storage::{Hibernation, StorageBackend, TempDir};
use fsm_stream::WindowConfig;
use fsm_types::{Batch, EdgeId, FsmError, Transaction};
use proptest::prelude::*;

const EDGES: u32 = 6;

fn config(window: usize, backend: StorageBackend) -> DsMatrixConfig {
    DsMatrixConfig::new(WindowConfig::new(window).unwrap(), backend, EDGES as usize)
}

fn batches(raw: &[Vec<Vec<u32>>]) -> Vec<Batch> {
    raw.iter()
        .enumerate()
        .map(|(id, transactions)| {
            Batch::from_transactions(
                id as u64,
                transactions
                    .iter()
                    .map(|t| Transaction::from_raw(t.iter().copied()))
                    .collect(),
            )
        })
        .collect()
}

fn assert_same_window(a: &mut DsMatrix, b: &mut DsMatrix, what: &str) {
    assert_eq!(a.num_items(), b.num_items(), "{what}: num_items");
    assert_eq!(
        a.num_transactions(),
        b.num_transactions(),
        "{what}: num_transactions"
    );
    assert_eq!(a.last_batch_id(), b.last_batch_id(), "{what}: last batch");
    for item in 0..a.num_items() as u32 {
        assert_eq!(
            a.row(EdgeId::new(item)).unwrap(),
            b.row(EdgeId::new(item)).unwrap(),
            "{what}: row {item}"
        );
    }
}

fn raw_batches() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::collection::vec(0..EDGES, 0..4), 0..4),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any stream, any split point and both volatile backends: hibernate
    /// at the split, thaw, and the rebuilt window is byte-identical — before
    /// and after both matrices ingest the remaining suffix.
    #[test]
    fn thawed_window_is_byte_identical(
        raw in raw_batches(),
        split_frac in 0.0f64..1.0,
        window in 1usize..4,
        backend_memory in any::<bool>(),
    ) {
        let backend = if backend_memory {
            StorageBackend::Memory
        } else {
            StorageBackend::DiskTemp
        };
        let stream = batches(&raw);
        let split = ((stream.len() as f64) * split_frac) as usize;

        let spill = TempDir::new("hib-prop").unwrap();
        let mut original = DsMatrix::new(config(window, backend.clone())).unwrap();
        for batch in &stream[..split] {
            original.ingest_batch(batch).unwrap();
        }
        original.hibernate(spill.path()).unwrap();
        let mut thawed = DsMatrix::thaw(config(window, backend), spill.path()).unwrap();
        assert_same_window(&mut original, &mut thawed, "at the split");

        for batch in &stream[split..] {
            original.ingest_batch(batch).unwrap();
            thawed.ingest_batch(batch).unwrap();
        }
        assert_same_window(&mut original, &mut thawed, "after the suffix");
    }
}

#[test]
fn durable_hibernate_reuses_the_checkpoint_path() {
    let durable_root = TempDir::new("hib-durable").unwrap();
    let spill = TempDir::new("hib-durable-spill").unwrap();
    let stream = batches(&[
        vec![vec![0, 1], vec![2]],
        vec![vec![1, 3]],
        vec![vec![0, 4], vec![3, 5], vec![2]],
    ]);
    let durable_config = || {
        config(2, StorageBackend::DiskTemp)
            .with_durability(DurabilityConfig::new(durable_root.path().to_path_buf()))
    };
    let mut original = DsMatrix::new(durable_config()).unwrap();
    for batch in &stream {
        original.ingest_batch(batch).unwrap();
    }
    original.hibernate(spill.path()).unwrap();
    drop(original);

    // No spill image: the durable artifacts under the durable root *are* the
    // hibernated state, reused via the recovery path.
    assert!(!Hibernation::artifact_path(spill.path()).exists());
    let mut thawed = DsMatrix::thaw(durable_config(), spill.path()).unwrap();
    let mut replayed = DsMatrix::new(config(2, StorageBackend::DiskTemp)).unwrap();
    for batch in &stream {
        replayed.ingest_batch(batch).unwrap();
    }
    assert_same_window(&mut replayed, &mut thawed, "durable thaw");
}

#[test]
fn corrupt_image_is_named_deleted_and_never_served() {
    let spill = TempDir::new("hib-corrupt").unwrap();
    let mut matrix = DsMatrix::new(config(2, StorageBackend::Memory)).unwrap();
    for batch in &batches(&[vec![vec![0, 1]], vec![vec![2, 3], vec![1]]]) {
        matrix.ingest_batch(batch).unwrap();
    }
    matrix.hibernate(spill.path()).unwrap();

    let path = Hibernation::artifact_path(spill.path());
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let err = DsMatrix::thaw(config(2, StorageBackend::Memory), spill.path()).unwrap_err();
    assert!(
        matches!(err, FsmError::CorruptArtifact { .. }),
        "expected CorruptArtifact, got {err}"
    );
    assert!(
        err.to_string().contains(Hibernation::FILE_NAME),
        "error must name the artifact: {err}"
    );
    // Recovery discipline: the proven-corrupt artifact is removed, so the
    // tenant can be recreated without tripping over it again.
    assert!(!path.exists());
}

#[test]
fn window_size_mismatch_is_a_config_error_not_corruption() {
    let spill = TempDir::new("hib-mismatch").unwrap();
    let mut matrix = DsMatrix::new(config(3, StorageBackend::Memory)).unwrap();
    matrix.ingest_batch(&batches(&[vec![vec![0]]])[0]).unwrap();
    matrix.hibernate(spill.path()).unwrap();

    let err = DsMatrix::thaw(config(2, StorageBackend::Memory), spill.path()).unwrap_err();
    assert!(
        matches!(err, FsmError::InvalidConfig(_)),
        "expected InvalidConfig, got {err}"
    );
    // A mismatch is the caller's mistake, not damage: the image survives for
    // a thaw under the correct configuration.
    assert!(Hibernation::artifact_path(spill.path()).exists());
    DsMatrix::thaw(config(3, StorageBackend::Memory), spill.path()).unwrap();
}

#[test]
fn empty_window_round_trips() {
    let spill = TempDir::new("hib-empty").unwrap();
    let mut matrix = DsMatrix::new(config(2, StorageBackend::Memory)).unwrap();
    matrix.hibernate(spill.path()).unwrap();
    let mut thawed = DsMatrix::thaw(config(2, StorageBackend::Memory), spill.path()).unwrap();
    assert_same_window(&mut matrix, &mut thawed, "empty window");
}
