//! Property tests: the DSMatrix is always an exact image of the last `w`
//! batches, no matter how the stream unfolds.

use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
use fsm_storage::StorageBackend;
use fsm_stream::WindowConfig;
use fsm_types::{Batch, EdgeId, Transaction};
use proptest::prelude::*;

const DOMAIN: u32 = 10;

fn arb_batches() -> impl Strategy<Value = Vec<Vec<Vec<u32>>>> {
    // A stream of 1..6 batches, each of 1..5 transactions over a small domain.
    proptest::collection::vec(
        proptest::collection::vec(
            proptest::collection::btree_set(0u32..DOMAIN, 0..6)
                .prop_map(|s| s.into_iter().collect::<Vec<u32>>()),
            1..5,
        ),
        1..6,
    )
}

fn to_batches(raw: &[Vec<Vec<u32>>]) -> Vec<Batch> {
    raw.iter()
        .enumerate()
        .map(|(id, txs)| {
            Batch::from_transactions(
                id as u64,
                txs.iter()
                    .map(|t| Transaction::from_raw(t.iter().copied()))
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After ingesting the whole stream, every row/column bit equals the
    /// membership of that edge in the corresponding transaction of the last
    /// `w` batches, on both storage backends.
    #[test]
    fn matrix_mirrors_window_contents(raw in arb_batches(), w in 1usize..4) {
        let batches = to_batches(&raw);
        for backend in [StorageBackend::Memory, StorageBackend::DiskTemp] {
            let mut matrix = DsMatrix::new(DsMatrixConfig::new(
                WindowConfig::new(w).unwrap(),
                backend,
                DOMAIN as usize,
            ))
            .unwrap();
            for batch in &batches {
                matrix.ingest_batch(batch).unwrap();
            }
            // The expected window: the last w batches, flattened.
            let start = batches.len().saturating_sub(w);
            let window: Vec<&Transaction> = batches[start..]
                .iter()
                .flat_map(|b| b.transactions().iter())
                .collect();
            prop_assert_eq!(matrix.num_transactions(), window.len());

            for edge in 0..DOMAIN {
                let row = matrix.row(EdgeId::new(edge)).unwrap();
                prop_assert_eq!(row.len(), window.len());
                for (col, transaction) in window.iter().enumerate() {
                    prop_assert_eq!(
                        row.get(col),
                        transaction.contains(EdgeId::new(edge)),
                        "edge {} column {}", edge, col
                    );
                }
                // Support equals the number of window transactions containing
                // the edge.
                let expected = window
                    .iter()
                    .filter(|t| t.contains(EdgeId::new(edge)))
                    .count() as u64;
                prop_assert_eq!(matrix.support(EdgeId::new(edge)).unwrap(), expected);
            }

            // Boundaries are cumulative batch sizes of the window.
            let mut acc = 0;
            let expected_bounds: Vec<usize> = batches[start..]
                .iter()
                .map(|b| {
                    acc += b.len();
                    acc
                })
                .collect();
            prop_assert_eq!(matrix.boundaries(), expected_bounds);
        }
    }

    /// Projection on a pivot reproduces exactly the suffixes of the window
    /// transactions containing the pivot.
    #[test]
    fn projection_is_exact(raw in arb_batches(), w in 1usize..4, pivot in 0u32..DOMAIN) {
        let batches = to_batches(&raw);
        let mut matrix = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(w).unwrap(),
            StorageBackend::Memory,
            DOMAIN as usize,
        ))
        .unwrap();
        for batch in &batches {
            matrix.ingest_batch(batch).unwrap();
        }
        let start = batches.len().saturating_sub(w);
        let pivot_id = EdgeId::new(pivot);
        let mut expected: Vec<Vec<EdgeId>> = batches[start..]
            .iter()
            .flat_map(|b| b.transactions().iter())
            .filter(|t| t.contains(pivot_id))
            .map(|t| t.suffix_after(pivot_id).to_vec())
            .filter(|s| !s.is_empty())
            .collect();
        expected.sort();

        let mut got: Vec<Vec<EdgeId>> = Vec::new();
        for (suffix, count) in matrix.project(pivot_id).unwrap() {
            for _ in 0..count {
                got.push(suffix.clone());
            }
        }
        got.sort();
        prop_assert_eq!(got, expected);
    }
}
