//! DSTree implementation.

use std::collections::{BTreeMap, VecDeque};

use fsm_fptree::ProjectedDb;
use fsm_stream::{SlidingWindow, WindowConfig};
use fsm_types::{Batch, EdgeId, Result, Support};

/// Construction options for a [`DsTree`].
#[derive(Debug, Clone, Copy, Default)]
pub struct DsTreeConfig {
    /// Sliding-window configuration (`w` batches).
    pub window: WindowConfig,
}

#[derive(Debug, Clone)]
struct Node {
    item: EdgeId,
    /// One frequency value per batch currently in the window (oldest first).
    counts: VecDeque<Support>,
    parent: usize,
    children: Vec<usize>,
}

impl Node {
    fn total(&self) -> Support {
        self.counts.iter().sum()
    }
}

/// The Data Stream Tree: a canonical-order prefix tree with per-batch counts.
#[derive(Debug, Clone)]
pub struct DsTree {
    nodes: Vec<Node>,
    header: BTreeMap<EdgeId, Vec<usize>>,
    window: SlidingWindow,
    /// Number of batch slots every node currently carries.
    slots: usize,
}

impl DsTree {
    /// Creates an empty DSTree.
    pub fn new(config: DsTreeConfig) -> Self {
        Self {
            nodes: vec![Node {
                item: EdgeId::new(u32::MAX),
                counts: VecDeque::new(),
                parent: 0,
                children: Vec::new(),
            }],
            header: BTreeMap::new(),
            window: SlidingWindow::new(config.window),
            slots: 0,
        }
    }

    /// Ingests one batch: slides the window if full, then inserts every
    /// transaction of the batch into the current (newest) batch slot.
    pub fn ingest_batch(&mut self, batch: &Batch) -> Result<()> {
        let outcome = self.window.push(batch.id, batch.len());
        if outcome.evicted.is_some() {
            self.evict_oldest_slot();
        }
        self.open_new_slot();
        for transaction in batch.iter() {
            self.insert(transaction.edges());
        }
        Ok(())
    }

    /// Number of batches currently represented.
    pub fn num_batches(&self) -> usize {
        self.window.num_batches()
    }

    /// Number of transactions in the window.
    pub fn num_transactions(&self) -> usize {
        self.window.total_transactions()
    }

    /// Number of item nodes (excluding the root).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Total support of `item` across the window.
    pub fn item_support(&self, item: EdgeId) -> Support {
        self.header
            .get(&item)
            .map(|nodes| nodes.iter().map(|&n| self.nodes[n].total()).sum())
            .unwrap_or(0)
    }

    /// Items present in the tree, in canonical order, with their supports.
    pub fn items(&self) -> Vec<(EdgeId, Support)> {
        self.header
            .keys()
            .map(|&item| (item, self.item_support(item)))
            .filter(|(_, s)| *s > 0)
            .collect()
    }

    /// Builds the `{item}`-projected database by traversing the item's node
    /// links upwards and summing each node's per-batch counts — the DSTree
    /// mining step of §2.1.
    pub fn project(&self, item: EdgeId) -> ProjectedDb {
        let mut db = ProjectedDb::new();
        if let Some(nodes) = self.header.get(&item) {
            for &node in nodes {
                let weight = self.nodes[node].total();
                if weight == 0 {
                    continue;
                }
                let mut prefix = Vec::new();
                let mut current = self.nodes[node].parent;
                while current != 0 {
                    prefix.push(self.nodes[current].item);
                    current = self.nodes[current].parent;
                }
                prefix.reverse();
                if !prefix.is_empty() {
                    db.push((prefix, weight));
                }
            }
        }
        db
    }

    /// Estimated resident bytes of the tree (every node plus its count list
    /// and child links); the DSTree is entirely memory-resident, which is the
    /// paper's space argument against it.
    pub fn resident_bytes(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                std::mem::size_of::<Node>()
                    + n.counts.len() * std::mem::size_of::<Support>()
                    + n.children.len() * std::mem::size_of::<usize>()
            })
            .sum::<usize>()
            + self
                .header
                .values()
                .map(|links| links.len() * std::mem::size_of::<usize>() + 8)
                .sum::<usize>()
    }

    fn insert(&mut self, items: &[EdgeId]) {
        let mut current = 0;
        for &item in items {
            let child = self.nodes[current]
                .children
                .iter()
                .copied()
                .find(|&c| self.nodes[c].item == item);
            let node = match child {
                Some(existing) => existing,
                None => {
                    let idx = self.nodes.len();
                    self.nodes.push(Node {
                        item,
                        counts: VecDeque::from(vec![0; self.slots]),
                        parent: current,
                        children: Vec::new(),
                    });
                    self.nodes[current].children.push(idx);
                    self.header.entry(item).or_default().push(idx);
                    idx
                }
            };
            if let Some(last) = self.nodes[node].counts.back_mut() {
                *last += 1;
            }
            current = node;
        }
    }

    /// Adds a fresh zero slot to every node for the arriving batch.
    fn open_new_slot(&mut self) {
        self.slots += 1;
        for node in &mut self.nodes {
            node.counts.push_back(0);
        }
    }

    /// Drops the oldest batch slot from every node and prunes nodes whose
    /// total count has become zero (and that have no surviving descendants).
    fn evict_oldest_slot(&mut self) {
        if self.slots == 0 {
            return;
        }
        self.slots -= 1;
        for node in &mut self.nodes {
            node.counts.pop_front();
        }
        self.prune_dead_nodes();
    }

    /// Rebuilds the arena keeping only nodes that still carry weight somewhere
    /// in their subtree.
    fn prune_dead_nodes(&mut self) {
        // Decide which nodes stay: a node stays if its subtree total is > 0.
        let mut keep = vec![false; self.nodes.len()];
        // Process children before parents: nodes are created after their
        // parents, so a reverse index scan visits descendants first.
        for idx in (1..self.nodes.len()).rev() {
            let alive_child = self.nodes[idx].children.iter().any(|&c| keep[c]);
            keep[idx] = alive_child || self.nodes[idx].total() > 0;
        }
        keep[0] = true;

        if keep.iter().all(|&k| k) {
            return;
        }

        // Compact the arena.
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut new_nodes: Vec<Node> = Vec::with_capacity(self.nodes.len());
        for (idx, node) in self.nodes.iter().enumerate() {
            if keep[idx] {
                remap[idx] = new_nodes.len();
                new_nodes.push(node.clone());
            }
        }
        for node in &mut new_nodes {
            node.parent = remap[node.parent];
            node.children = node
                .children
                .iter()
                .filter(|&&c| keep[c])
                .map(|&c| remap[c])
                .collect();
        }
        let mut new_header: BTreeMap<EdgeId, Vec<usize>> = BTreeMap::new();
        for (item, links) in &self.header {
            let remapped: Vec<usize> = links
                .iter()
                .filter(|&&n| keep[n])
                .map(|&n| remap[n])
                .collect();
            if !remapped.is_empty() {
                new_header.insert(*item, remapped);
            }
        }
        self.nodes = new_nodes;
        self.header = new_header;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_types::Transaction;

    fn paper_batches() -> Vec<Batch> {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        vec![
            Batch::from_transactions(0, vec![e(&[2, 3, 5]), e(&[0, 4, 5]), e(&[0, 2, 5])]),
            Batch::from_transactions(1, vec![e(&[0, 2, 3, 5]), e(&[0, 3, 4, 5]), e(&[0, 1, 2])]),
            Batch::from_transactions(2, vec![e(&[0, 2, 5]), e(&[0, 2, 3, 5]), e(&[1, 2, 3])]),
        ]
    }

    fn tree_after(batches: usize) -> DsTree {
        let mut tree = DsTree::new(DsTreeConfig {
            window: WindowConfig::new(2).unwrap(),
        });
        for batch in paper_batches().into_iter().take(batches) {
            tree.ingest_batch(&batch).unwrap();
        }
        tree
    }

    #[test]
    fn supports_match_the_first_window() {
        let tree = tree_after(2);
        // Window = E1..E6: a:5, b:1, c:4, d:3, e:2, f:5.
        let expected = [(0, 5u64), (1, 1), (2, 4), (3, 3), (4, 2), (5, 5)];
        for (raw, want) in expected {
            assert_eq!(tree.item_support(EdgeId::new(raw)), want, "item {raw}");
        }
        assert_eq!(tree.num_transactions(), 6);
        assert_eq!(tree.num_batches(), 2);
    }

    #[test]
    fn supports_match_after_the_window_slides() {
        let tree = tree_after(3);
        // Window = E4..E9: a:5, b:2, c:5, d:4, e:1, f:4 (Example 5).
        let expected = [(0, 5u64), (1, 2), (2, 5), (3, 4), (4, 1), (5, 4)];
        for (raw, want) in expected {
            assert_eq!(tree.item_support(EdgeId::new(raw)), want, "item {raw}");
        }
        assert_eq!(tree.items().len(), 6);
    }

    #[test]
    fn eviction_prunes_dead_branches() {
        let e = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
        let mut tree = DsTree::new(DsTreeConfig {
            window: WindowConfig::new(1).unwrap(),
        });
        tree.ingest_batch(&Batch::from_transactions(0, vec![e(&[0, 1, 2])]))
            .unwrap();
        let nodes_before = tree.num_nodes();
        assert_eq!(nodes_before, 3);
        // A completely different batch evicts the old one; the old path dies.
        tree.ingest_batch(&Batch::from_transactions(1, vec![e(&[3, 4])]))
            .unwrap();
        assert_eq!(tree.num_nodes(), 2);
        assert_eq!(tree.item_support(EdgeId::new(0)), 0);
        assert_eq!(tree.item_support(EdgeId::new(3)), 1);
        assert!(tree.items().iter().all(|(_, s)| *s > 0));
    }

    #[test]
    fn projection_gathers_weighted_prefix_paths() {
        let tree = tree_after(3);
        // {f}-projected database: the prefix paths above every f node,
        // weighted; total weight must equal support(f) minus transactions
        // where f is the only / first item (none here start with f alone —
        // every window transaction containing f also contains an earlier
        // item).
        let db = tree.project(EdgeId::new(5));
        let total: Support = db.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4);
        // Every prefix is strictly ascending and below f.
        for (prefix, _) in &db {
            for pair in prefix.windows(2) {
                assert!(pair[0] < pair[1]);
            }
            assert!(prefix.iter().all(|e| e.index() < 5));
        }
        // Projecting an item that heads every path yields nothing.
        assert!(tree.project(EdgeId::new(0)).is_empty());
        // Unknown items yield nothing.
        assert!(tree.project(EdgeId::new(9)).is_empty());
    }

    #[test]
    fn resident_bytes_reflect_tree_growth() {
        let small = tree_after(1);
        let large = tree_after(2);
        assert!(large.resident_bytes() > small.resident_bytes());
        assert!(small.resident_bytes() > 0);
    }

    #[test]
    fn window_of_one_batch_tracks_only_latest() {
        let mut tree = DsTree::new(DsTreeConfig {
            window: WindowConfig::new(1).unwrap(),
        });
        for batch in paper_batches() {
            tree.ingest_batch(&batch).unwrap();
        }
        // Window = E7..E9 only: a:2, b:1, c:3, d:2, e:0, f:2.
        assert_eq!(tree.item_support(EdgeId::new(0)), 2);
        assert_eq!(tree.item_support(EdgeId::new(2)), 3);
        assert_eq!(tree.item_support(EdgeId::new(4)), 0);
        assert_eq!(tree.num_transactions(), 3);
    }
}
