//! The DSTree baseline (Leung & Khan, ICDM 2006) as described in §2.1 of the
//! paper.
//!
//! The DSTree is an **in-memory** prefix tree over canonical-order
//! transactions.  Each node keeps a list of `w` per-batch frequency values so
//! that a window slide only drops the oldest value from every node instead of
//! restructuring the tree.  Mining extracts, for every item, the weighted
//! prefix paths above that item's nodes (an `{x}`-projected database) and runs
//! FP-growth on them.
//!
//! The structure exists here as the evaluation baseline: it returns exactly
//! the same frequent collections as the DSMatrix algorithms (experiment E1)
//! while holding the entire window *and* the recursive FP-trees in memory
//! (experiment E2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tree;

pub use tree::{DsTree, DsTreeConfig};
