//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the `rand 0.8` API used by this workspace —
//! seeded [`rngs::StdRng`], [`Rng::gen_bool`] / [`Rng::gen_range`], and
//! [`seq::SliceRandom`] — on top of a SplitMix64 generator.  Sequences are
//! deterministic per seed but are *not* bit-compatible with the real crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        next_f64(self) < p.clamp(0.0, 1.0)
    }

    /// Samples uniformly from `range` (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

fn next_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 uniformly random mantissa bits in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample itself.
pub trait SampleRange<T> {
    /// Draws one uniform value.  Panics if the range is empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + next_f64(rng) * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&hits), "suspicious bias: {hits}");
    }

    #[test]
    fn shuffle_and_choose_cover_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut data: Vec<u32> = (0..50).collect();
        let original = data.clone();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, original, "shuffle must permute, not mutate");
        assert!(data.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
