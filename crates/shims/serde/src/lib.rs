//! Offline stand-in for `serde`.
//!
//! Re-exports no-op `Serialize` / `Deserialize` derive macros so the
//! workspace's `#[derive(Serialize, Deserialize)]` annotations compile
//! without registry access.  No serialisation is performed in-tree; swapping
//! in the real crate is a manifest-only change.

#![forbid(unsafe_code)]

pub use serde_derive_shim::{Deserialize, Serialize};
