//! Offline stand-in for the `criterion` crate.
//!
//! Supports the benchmark surface this workspace uses — groups, `sample_size`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — measuring wall-clock time
//! and reporting mean/min/max per sample.  There is no statistical analysis
//! or baseline persistence; swap in the real crate for rigorous comparisons.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one timing sample per batch.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up and batch-size calibration: aim for >= 5 ms per sample.
        let calibration = Instant::now();
        black_box(routine());
        let once = calibration.elapsed().max(Duration::from_nanos(50));
        let per_sample = (Duration::from_millis(5).as_nanos() / once.as_nanos()).max(1) as usize;

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample as u32);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Benchmarks `routine` under `id`.
    pub fn bench_function(&mut self, id: impl Display, routine: impl FnMut(&mut Bencher)) {
        self.run(id.to_string(), routine);
    }

    /// Benchmarks `routine` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id.to_string(), |b| routine(b, input));
    }

    fn run(&mut self, id: String, mut routine: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        routine(&mut bencher);
        report(&self.name, &id, &bencher.samples);
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Benchmarks `routine` outside any group.
    pub fn bench_function(&mut self, id: impl Display, routine: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, routine);
        group.finish();
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{group}/{id}: mean {} (min {}, max {}, {} samples)",
        pretty(mean),
        pretty(*min),
        pretty(*max),
        samples.len()
    );
}

fn pretty(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions (each takes `&mut Criterion`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            $(
                let mut criterion = $crate::Criterion::default();
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("noop", "x"), &(), |b, ()| {
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
    }

    #[test]
    fn pretty_formats_each_magnitude() {
        assert_eq!(pretty(Duration::from_nanos(500)), "500 ns");
        assert!(pretty(Duration::from_micros(5)).ends_with("µs"));
        assert!(pretty(Duration::from_millis(5)).ends_with("ms"));
        assert!(pretty(Duration::from_secs(5)).ends_with("s"));
    }
}
