//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace uses: the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`, [`strategy::Strategy`]
//! with `prop_map`, `any::<T>()`, integer/float range strategies, tuple
//! strategies, and the `collection::{vec, btree_set, btree_map}` combinators.
//!
//! Test cases are generated from a deterministic seed derived from the test
//! name (override with the `PROPTEST_SEED` environment variable), so failures
//! reproduce across runs.  On failure the runner greedily shrinks the input
//! (element removal for collections, halving towards the lower bound for
//! numbers) and reports the minimal failing case.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file normally imports.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal muncher behind [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(&config, stringify!($name), &strategy, |($($pat,)+)| {
                $body
                Ok(())
            });
        }
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the case (and
/// triggering shrinking) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} ({}) at {}:{}",
                    stringify!($cond),
                    format!($($fmt)+),
                    file!(),
                    line!()
                ),
            ));
        }
    };
}

/// Asserts equality inside a property test (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}` at {}:{}",
                    left, right, file!(), line!()
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}` ({}) at {}:{}",
                    left, right, format!($($fmt)+), file!(), line!()
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a property test (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}` at {}:{}",
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
}
