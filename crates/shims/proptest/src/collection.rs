//! Collection strategies: `vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size bounds for a generated collection (`min..max`, exclusive max).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed size.
    pub min: usize,
    /// One past the largest allowed size.
    pub max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        Self {
            min: range.start,
            max: range.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max: exact + 1,
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + (rng.next_u64() as usize) % (self.max - self.min)
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Structural shrinks first: drop chunks, then single elements.
        if value.len() > self.size.min {
            let half = value.len() / 2;
            if half >= self.size.min && half < value.len() {
                out.push(value[..half].to_vec());
                out.push(value[value.len() - half..].to_vec());
            }
            for i in (0..value.len().min(8)).rev() {
                let mut next = value.clone();
                next.remove(i);
                out.push(next);
            }
        }
        // Element-wise shrinks on a bounded prefix.
        for (i, item) in value.iter().enumerate().take(8) {
            for candidate in self.element.shrink(item).into_iter().take(2) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Strategy for `BTreeSet<T>`.
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates ordered sets whose size falls in `size` (best effort: drawing
/// from a small element domain may yield fewer distinct elements).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        for _ in 0..target.saturating_mul(4).max(8) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.new_value(rng));
        }
        out
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        if value.len() > self.size.min {
            for item in value.iter().take(8) {
                let mut next = value.clone();
                next.remove(item);
                out.push(next);
            }
        }
        out
    }
}

/// Strategy for `BTreeMap<K, V>`.
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

/// Generates ordered maps whose size falls in `size` (best effort, as for
/// [`btree_set`]).
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut out = BTreeMap::new();
        for _ in 0..target.saturating_mul(4).max(8) {
            if out.len() >= target {
                break;
            }
            out.insert(self.key.new_value(rng), self.value.new_value(rng));
        }
        out
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        if value.len() > self.size.min {
            for key in value.keys().take(8) {
                let mut next = value.clone();
                next.remove(key);
                out.push(next);
            }
        }
        out
    }
}
