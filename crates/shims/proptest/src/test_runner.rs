//! The case runner: seeded generation, failure detection, greedy shrinking.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::strategy::Strategy;

/// Runner configuration (the subset of proptest's knobs the workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed assertion inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn base_seed(name: &str) -> u64 {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse() {
            return seed;
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn outcome<S, F>(test: &F, value: &S::Value) -> Result<(), String>
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    match catch_unwind(AssertUnwindSafe(|| test(value.clone()))) {
        Ok(Ok(())) => Ok(()),
        Ok(Err(err)) => Err(err.message),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panicked".to_string());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Case count actually run: the `PROPTEST_CASES` environment variable, when
/// set, overrides the configured count — CI's knob for cranking coverage up
/// on a deeper sweep without touching every test file.  (Real proptest only
/// lets the variable set the *default*; since this workspace always
/// configures counts explicitly, the shim lets the variable win.)
fn effective_cases(config: &ProptestConfig) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(config.cases)
}

/// Runs `config.cases` random cases of `test` against `strategy` (the
/// `PROPTEST_CASES` environment variable overrides the count), shrinking
/// and panicking with the minimal failing input on the first failure.
pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let seed = base_seed(name);
    for case in 0..effective_cases(config) {
        let mut rng = TestRng::new(seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let value = strategy.new_value(&mut rng);
        if let Err(first_message) = outcome::<S, F>(&test, &value) {
            let (minimal, message) = shrink::<S, F>(strategy, &test, value, first_message);
            panic!(
                "property '{name}' failed (seed {seed}, case {case}).\n\
                 minimal failing input: {minimal:?}\n{message}"
            );
        }
    }
}

fn shrink<S, F>(
    strategy: &S,
    test: &F,
    mut current: S::Value,
    mut message: String,
) -> (S::Value, String)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut budget = 1000usize;
    loop {
        let mut improved = false;
        for candidate in strategy.shrink(&current) {
            if budget == 0 {
                return (current, message);
            }
            budget -= 1;
            if let Err(new_message) = outcome::<S, F>(test, &candidate) {
                current = candidate;
                message = new_message;
                improved = true;
                break;
            }
        }
        if !improved {
            return (current, message);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;
    use crate::strategy::any;

    #[test]
    fn passing_property_runs_all_cases() {
        let hits = std::cell::Cell::new(0u32);
        let config = ProptestConfig::with_cases(10);
        run(&config, "counting", &(0u32..100,), |(v,)| {
            assert!(v < 100);
            hits.set(hits.get() + 1);
            Ok(())
        });
        assert_eq!(hits.get(), 10);
    }

    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn failing_property_panics_with_shrunk_input() {
        let config = ProptestConfig::with_cases(50);
        run(
            &config,
            "always_small",
            &(collection::vec(any::<bool>(), 0..50),),
            |(v,)| {
                if v.len() >= 3 {
                    Err(TestCaseError::fail("too long"))
                } else {
                    Ok(())
                }
            },
        );
    }

    #[test]
    fn shrinking_minimises_vec_length() {
        let strategy = (collection::vec(any::<bool>(), 0..50),);
        let test = |(v,): (Vec<bool>,)| {
            if v.len() >= 3 {
                Err(TestCaseError::fail("too long"))
            } else {
                Ok(())
            }
        };
        let seed_value = vec![true; 20];
        let (minimal, _) = shrink(&strategy, &test, (seed_value,), "too long".into());
        assert_eq!(
            minimal.0.len(),
            3,
            "greedy shrink should reach the boundary"
        );
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(base_seed("abc"), base_seed("abc"));
        assert_ne!(base_seed("abc"), base_seed("abd"));
    }
}
