//! Value-generation strategies.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating (and shrinking) values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug;

    /// Draws one fresh value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns candidate simplifications of a failing value (may be empty).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    ///
    /// Mapped strategies do not shrink (the mapping is not invertible); keep
    /// the raw strategy shrinkable where minimal counterexamples matter.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Clone + Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Clone + Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy for any value of a type with a canonical distribution, mirroring
/// `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical [`Strategy`].
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Uniform `bool` strategy (shrinks `true` to `false`).
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn new_value(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Full-range integer strategy used by `any::<uN>()`.
#[derive(Debug, Clone, Copy)]
pub struct AnyInt<T>(PhantomData<T>);

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                if *value > self.start {
                    out.push(self.start);
                    let mid = self.start + (*value - self.start) / 2;
                    if mid != self.start && mid != *value {
                        out.push(mid);
                    }
                    if *value - 1 != self.start {
                        out.push(*value - 1);
                    }
                }
                out
            }
        }

        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                if *value == 0 {
                    Vec::new()
                } else {
                    vec![0, *value / 2]
                }
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;

            fn arbitrary() -> AnyInt<$t> {
                AnyInt(PhantomData)
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        if *value > self.start {
            vec![self.start, self.start + (*value - self.start) / 2.0]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}
