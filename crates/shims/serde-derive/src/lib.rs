//! No-op derive macros backing the offline `serde` shim.
//!
//! The workspace derives `Serialize` / `Deserialize` on its core types so
//! that switching to the real `serde` is a manifest-only change, but nothing
//! in-tree performs serialisation.  These derives therefore accept the same
//! syntax (including `#[serde(...)]` helper attributes) and emit nothing.

use proc_macro::TokenStream;

/// Derives a no-op `Serialize` implementation marker (emits nothing).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives a no-op `Deserialize` implementation marker (emits nothing).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
