//! Hand-rolled argument parsing for the `fsm` command-line tool (keeps the
//! workspace within the approved dependency set — no clap).

use fsm_core::Algorithm;
use fsm_storage::StorageBackend;
use fsm_types::{FsmError, MinSup, Result};

/// Input file formats the CLI understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// FIMI transaction format: one transaction per line, integer item ids.
    Fimi,
    /// N-Triples linked-data format; resource-linking triples become edges.
    NTriples,
}

/// Output condensation selected by the user.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputKind {
    /// Every frequent connected collection.
    #[default]
    All,
    /// Closed collections only.
    Closed,
    /// Maximal collections only.
    Maximal,
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Path of the input file.
    pub input: String,
    /// Input format (inferred from the extension when not given).
    pub format: InputFormat,
    /// Mining algorithm.
    pub algorithm: Algorithm,
    /// Minimum support.
    pub minsup: MinSup,
    /// Window size in batches.
    pub window: usize,
    /// Transactions per batch.
    pub batch_size: usize,
    /// Optional cap on pattern cardinality.
    pub max_len: Option<usize>,
    /// Optional top-k selection applied after mining.
    pub top_k: Option<usize>,
    /// Output condensation.
    pub output: OutputKind,
    /// Emit CSV instead of human-readable lines.
    pub csv: bool,
    /// For N-Triples input: group triples into one graph per N statements
    /// (`None` means group by subject).
    pub group_size: Option<usize>,
    /// Worker threads for the vertical algorithms (0 = all cores).
    pub threads: usize,
    /// Mine every window slide on a worker thread (epoch snapshots) while
    /// ingest continues on the main thread.
    pub concurrent: bool,
    /// Maintain the frequent-pattern set across window slides (delta mining)
    /// instead of re-mining every window from scratch.
    pub delta: bool,
    /// DSMatrix storage backend (the paper's default keeps the window on
    /// disk).
    pub backend: StorageBackend,
    /// Byte budget of the decoded-chunk cache the disk backend reads
    /// through (0 disables it).
    pub cache_budget: usize,
    /// Durable-directory root: WAL + checkpoints land here and the run
    /// becomes crash-recoverable (`None` keeps the window volatile).
    pub durable_dir: Option<String>,
    /// Resume from the durable directory instead of starting fresh.
    pub recover: bool,
    /// Checkpoint interval in window slides for the durable layer.
    pub checkpoint_every: usize,
    /// Abort the process (simulating a crash) after ingesting this many
    /// batches — for recovery testing only.
    pub crash_after: Option<usize>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            input: String::new(),
            format: InputFormat::Fimi,
            algorithm: Algorithm::DirectVertical,
            minsup: MinSup::Relative(0.05),
            window: 5,
            batch_size: 1000,
            max_len: None,
            top_k: None,
            output: OutputKind::All,
            csv: false,
            group_size: None,
            threads: 1,
            concurrent: false,
            delta: false,
            backend: StorageBackend::default(),
            cache_budget: 0,
            durable_dir: None,
            recover: false,
            checkpoint_every: fsm_core::DurabilityConfig::DEFAULT_CHECKPOINT_EVERY,
            crash_after: None,
        }
    }
}

/// Usage text printed for `--help` and on parse errors.
pub const USAGE: &str = "\
fsm — frequent connected subgraph mining from graph streams

USAGE:
  fsm mine --input <FILE> [OPTIONS]

OPTIONS:
  --input <FILE>        FIMI (.dat/.txt) or N-Triples (.nt) input file
  --format <fimi|ntriples>   override format inference
  --algorithm <NAME>    multi-tree | single-tree | top-down | vertical |
                        direct-vertical        (default: direct-vertical)
  --minsup <VALUE>      absolute count (e.g. 20) or fraction (e.g. 0.05)
  --window <N>          sliding window size in batches     (default: 5)
  --batch-size <N>      transactions per batch             (default: 1000)
  --max-len <N>         cap on pattern cardinality
  --threads <N>         worker threads for the vertical algorithms
                        (0 = all cores, default: 1)
  --concurrent          freeze an epoch snapshot after every ingested batch
                        and mine it on a worker thread while ingest continues
                        (the printed output is identical to a sequential run)
  --delta               maintain the frequent-pattern set across window
                        slides (per-segment support deltas + border
                        re-expansion) instead of re-mining each window;
                        the printed output is identical to a full re-mine
  --backend <disk|memory>   where the DSMatrix keeps the window
                        (default: disk, the paper's space posture)
  --cache-budget <BYTES>    decoded-chunk cache budget for the disk
                        backend: rows whose chunks fit are mined straight
                        from pinned cache chunks (no per-mine assembly);
                        0 disables it, 'unlimited' pins the whole window
                        (default: 0; rejected with --backend memory)
  --durable-dir <DIR>   make the run crash-recoverable: WAL every batch and
                        checkpoint the window into DIR (disk backend only)
  --recover             resume from DIR instead of starting fresh: rebuild
                        the pre-crash window (newest valid checkpoint + WAL
                        replay) and skip the already-ingested input prefix
  --checkpoint-every <N>    slides between checkpoints    (default: 8)
  --crash-after <N>     abort() after ingesting N batches — simulates a
                        crash for recovery testing (requires --durable-dir)
  --top-k <N>           report only the k best-supported patterns
  --closed | --maximal  condensed output
  --csv                 emit CSV (edges,support) instead of text
  --group-size <N>      N-Triples only: one graph per N linking statements
                        (default: one graph per subject)
  --help                show this message
";

/// Parses the CLI arguments (excluding the program name).
pub fn parse(args: &[String]) -> Result<Options> {
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        return Err(FsmError::config(USAGE));
    }
    if args[0] != "mine" {
        return Err(FsmError::config(format!(
            "unknown command '{}'\n\n{USAGE}",
            args[0]
        )));
    }
    let mut options = Options::default();
    let mut format_given = false;
    let mut iter = args[1..].iter().peekable();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> Result<String> {
            iter.next()
                .cloned()
                .ok_or_else(|| FsmError::config(format!("{name} needs a value")))
        };
        match flag.as_str() {
            "--input" => options.input = value("--input")?,
            "--format" => {
                format_given = true;
                options.format = match value("--format")?.as_str() {
                    "fimi" => InputFormat::Fimi,
                    "ntriples" | "nt" => InputFormat::NTriples,
                    other => return Err(FsmError::config(format!("unknown format '{other}'"))),
                };
            }
            "--algorithm" => {
                options.algorithm = match value("--algorithm")?.as_str() {
                    "multi-tree" => Algorithm::MultiTree,
                    "single-tree" => Algorithm::SingleTree,
                    "top-down" => Algorithm::TopDown,
                    "vertical" => Algorithm::Vertical,
                    "direct-vertical" | "direct" => Algorithm::DirectVertical,
                    other => return Err(FsmError::config(format!("unknown algorithm '{other}'"))),
                };
            }
            "--minsup" => {
                let raw = value("--minsup")?;
                options.minsup = parse_minsup(&raw)?;
            }
            "--window" => options.window = parse_number(&value("--window")?, "--window")?,
            "--batch-size" => {
                options.batch_size = parse_number(&value("--batch-size")?, "--batch-size")?
            }
            "--max-len" => options.max_len = Some(parse_number(&value("--max-len")?, "--max-len")?),
            "--threads" => options.threads = parse_number(&value("--threads")?, "--threads")?,
            "--concurrent" => options.concurrent = true,
            "--delta" => options.delta = true,
            "--backend" => {
                options.backend = match value("--backend")?.as_str() {
                    "disk" => StorageBackend::DiskTemp,
                    "memory" | "mem" => StorageBackend::Memory,
                    other => return Err(FsmError::config(format!("unknown backend '{other}'"))),
                };
            }
            "--cache-budget" => {
                let raw = value("--cache-budget")?;
                options.cache_budget = if raw == "unlimited" || raw == "max" {
                    usize::MAX
                } else {
                    parse_number(&raw, "--cache-budget")?
                };
            }
            "--durable-dir" => options.durable_dir = Some(value("--durable-dir")?),
            "--recover" => options.recover = true,
            "--checkpoint-every" => {
                options.checkpoint_every =
                    parse_number(&value("--checkpoint-every")?, "--checkpoint-every")?
            }
            "--crash-after" => {
                options.crash_after = Some(parse_number(&value("--crash-after")?, "--crash-after")?)
            }
            "--top-k" => options.top_k = Some(parse_number(&value("--top-k")?, "--top-k")?),
            "--group-size" => {
                options.group_size = Some(parse_number(&value("--group-size")?, "--group-size")?)
            }
            "--closed" => options.output = OutputKind::Closed,
            "--maximal" => options.output = OutputKind::Maximal,
            "--csv" => options.csv = true,
            "--help" | "-h" => return Err(FsmError::config(USAGE)),
            other => {
                return Err(FsmError::config(format!(
                    "unknown option '{other}'\n\n{USAGE}"
                )))
            }
        }
    }
    if options.input.is_empty() {
        return Err(FsmError::config(format!("--input is required\n\n{USAGE}")));
    }
    if !format_given && (options.input.ends_with(".nt") || options.input.ends_with(".ntriples")) {
        options.format = InputFormat::NTriples;
    }
    if options.window == 0 || options.batch_size == 0 {
        return Err(FsmError::config(
            "--window and --batch-size must be positive",
        ));
    }
    if options.delta && options.concurrent {
        // Delta state lives with the writer and advances one epoch at a
        // time; handing frozen snapshots to a detached worker would either
        // share that state across threads or silently fall back to full
        // re-mines.  Refuse the combination instead of guessing.
        return Err(FsmError::config(
            "--delta and --concurrent are mutually exclusive: delta mining \
             maintains its pattern state on the ingest thread",
        ));
    }
    if options.cache_budget > 0 && matches!(options.backend, StorageBackend::Memory) {
        // Silently ignoring the budget (the memory backend has no chunk
        // cache) hides a misconfiguration: the user asked for a bounded
        // cache but got a fully-resident window.
        return Err(FsmError::config(
            "--cache-budget only applies to --backend disk; the memory backend \
             keeps the whole window resident and has no chunk cache to budget",
        ));
    }
    if options.durable_dir.is_some() && matches!(options.backend, StorageBackend::Memory) {
        return Err(FsmError::config(
            "--durable-dir only applies to --backend disk; the memory backend \
             has no durable artifacts to recover from",
        ));
    }
    if options.recover && options.durable_dir.is_none() {
        return Err(FsmError::config("--recover requires --durable-dir"));
    }
    if options.crash_after.is_some() && options.durable_dir.is_none() {
        return Err(FsmError::config(
            "--crash-after requires --durable-dir (a simulated crash without \
             durability would just lose the run)",
        ));
    }
    if options.checkpoint_every == 0 {
        return Err(FsmError::config("--checkpoint-every must be positive"));
    }
    Ok(options)
}

fn parse_minsup(raw: &str) -> Result<MinSup> {
    if let Ok(count) = raw.parse::<u64>() {
        return Ok(MinSup::absolute(count));
    }
    match raw.parse::<f64>() {
        Ok(fraction) if fraction > 0.0 && fraction <= 1.0 => Ok(MinSup::relative(fraction)),
        _ => Err(FsmError::config(format!(
            "--minsup must be a positive integer or a fraction in (0, 1], got '{raw}'"
        ))),
    }
}

fn parse_number(raw: &str, flag: &str) -> Result<usize> {
    raw.parse()
        .map_err(|_| FsmError::config(format!("{flag} expects a number, got '{raw}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn to_args(text: &str) -> Vec<String> {
        text.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn minimal_invocation_uses_defaults() {
        let options = parse(&to_args("mine --input data.dat")).unwrap();
        assert_eq!(options.input, "data.dat");
        assert_eq!(options.format, InputFormat::Fimi);
        assert_eq!(options.algorithm, Algorithm::DirectVertical);
        assert_eq!(options.window, 5);
        assert_eq!(options.output, OutputKind::All);
        assert!(!options.csv);
        assert!(!options.concurrent, "concurrent mining is opt-in");
    }

    #[test]
    fn concurrent_composes_with_every_backend_and_durability() {
        for args in [
            "mine --input x --concurrent",
            "mine --input x --concurrent --backend memory",
            "mine --input x --concurrent --backend disk --cache-budget unlimited",
            "mine --input x --concurrent --durable-dir /tmp/d --recover",
        ] {
            let options = parse(&to_args(args)).unwrap();
            assert!(options.concurrent, "{args}");
        }
    }

    #[test]
    fn every_flag_is_parsed() {
        let options = parse(&to_args(
            "mine --input log.nt --algorithm vertical --minsup 0.1 --window 3 \
             --batch-size 50 --max-len 4 --top-k 10 --closed --csv --group-size 6 \
             --threads 4 --concurrent --backend disk --cache-budget 65536",
        ))
        .unwrap();
        assert!(matches!(options.backend, StorageBackend::DiskTemp));
        assert!(options.concurrent);
        assert_eq!(options.cache_budget, 65536);
        assert_eq!(options.format, InputFormat::NTriples, "inferred from .nt");
        assert_eq!(options.algorithm, Algorithm::Vertical);
        assert_eq!(options.minsup, MinSup::Relative(0.1));
        assert_eq!(options.window, 3);
        assert_eq!(options.batch_size, 50);
        assert_eq!(options.max_len, Some(4));
        assert_eq!(options.top_k, Some(10));
        assert_eq!(options.output, OutputKind::Closed);
        assert!(options.csv);
        assert_eq!(options.group_size, Some(6));
        assert_eq!(options.threads, 4);
    }

    #[test]
    fn absolute_and_relative_minsup() {
        assert_eq!(
            parse(&to_args("mine --input x --minsup 20"))
                .unwrap()
                .minsup,
            MinSup::Absolute(20)
        );
        assert_eq!(
            parse(&to_args("mine --input x --minsup 0.5"))
                .unwrap()
                .minsup,
            MinSup::Relative(0.5)
        );
        assert!(parse(&to_args("mine --input x --minsup -3")).is_err());
        assert!(parse(&to_args("mine --input x --minsup 1.5")).is_err());
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&[]).is_err());
        assert!(parse(&to_args("--help")).is_err());
        assert!(parse(&to_args("frobnicate --input x")).is_err());
        assert!(parse(&to_args("mine")).is_err(), "missing --input");
        assert!(parse(&to_args("mine --input x --algorithm nope")).is_err());
        assert!(parse(&to_args("mine --input x --window 0")).is_err());
        assert!(parse(&to_args("mine --input x --format weird")).is_err());
        assert!(
            parse(&to_args("mine --input x --window")).is_err(),
            "missing value"
        );
        assert!(parse(&to_args("mine --input x --bogus 1")).is_err());
    }

    #[test]
    fn backend_and_cache_budget_defaults_and_errors() {
        let options = parse(&to_args("mine --input x")).unwrap();
        assert!(matches!(options.backend, StorageBackend::DiskTemp));
        assert_eq!(options.cache_budget, 0, "cache is opt-in");
        let unlimited = parse(&to_args("mine --input x --cache-budget unlimited")).unwrap();
        assert_eq!(unlimited.cache_budget, usize::MAX);
        let disk = parse(&to_args("mine --input x --backend disk")).unwrap();
        assert!(matches!(disk.backend, StorageBackend::DiskTemp));
        assert!(parse(&to_args("mine --input x --backend floppy")).is_err());
        assert!(parse(&to_args("mine --input x --cache-budget lots")).is_err());
    }

    #[test]
    fn cache_budget_with_memory_backend_is_rejected_not_ignored() {
        // Flag order must not matter, and the error must name the conflict.
        for args in [
            "mine --input x --backend memory --cache-budget 65536",
            "mine --input x --cache-budget 65536 --backend memory",
            "mine --input x --backend mem --cache-budget unlimited",
        ] {
            let err = parse(&to_args(args)).unwrap_err();
            assert!(err.to_string().contains("--cache-budget"), "{args}: {err}");
        }
        // An explicit zero budget is the no-cache default and stays legal.
        let zero = parse(&to_args("mine --input x --backend memory --cache-budget 0")).unwrap();
        assert_eq!(zero.cache_budget, 0);
        assert!(matches!(zero.backend, StorageBackend::Memory));
    }

    #[test]
    fn delta_composes_with_backends_but_not_with_concurrent() {
        assert!(
            !parse(&to_args("mine --input x")).unwrap().delta,
            "delta mining is opt-in"
        );
        for args in [
            "mine --input x --delta",
            "mine --input x --delta --backend memory",
            "mine --input x --delta --backend disk --cache-budget unlimited",
            "mine --input x --delta --durable-dir /tmp/d --recover",
            "mine --input x --delta --threads 4 --minsup 0.1",
        ] {
            assert!(parse(&to_args(args)).unwrap().delta, "{args}");
        }
        // Flag order must not matter, and the error must name the conflict.
        for args in [
            "mine --input x --delta --concurrent",
            "mine --input x --concurrent --delta",
        ] {
            let err = parse(&to_args(args)).unwrap_err();
            assert!(err.to_string().contains("--delta"), "{args}: {err}");
        }
    }

    #[test]
    fn explicit_format_overrides_inference() {
        let options = parse(&to_args("mine --input data.nt --format fimi")).unwrap();
        assert_eq!(options.format, InputFormat::Fimi);
    }

    #[test]
    fn durability_flags_are_parsed() {
        let options = parse(&to_args(
            "mine --input x --durable-dir /tmp/d --checkpoint-every 4 --crash-after 7",
        ))
        .unwrap();
        assert_eq!(options.durable_dir.as_deref(), Some("/tmp/d"));
        assert_eq!(options.checkpoint_every, 4);
        assert_eq!(options.crash_after, Some(7));
        assert!(!options.recover);

        let resumed = parse(&to_args("mine --input x --durable-dir /tmp/d --recover")).unwrap();
        assert!(resumed.recover);

        let defaults = parse(&to_args("mine --input x")).unwrap();
        assert_eq!(defaults.durable_dir, None);
        assert_eq!(
            defaults.checkpoint_every,
            fsm_core::DurabilityConfig::DEFAULT_CHECKPOINT_EVERY
        );
    }

    #[test]
    fn durability_flag_conflicts_are_rejected() {
        for args in [
            // Durability needs something on disk to make durable.
            "mine --input x --backend memory --durable-dir /tmp/d",
            "mine --input x --durable-dir /tmp/d --backend mem",
            // Recovery and crash simulation without a durable dir are no-ops
            // the user surely did not mean.
            "mine --input x --recover",
            "mine --input x --crash-after 3",
            // A zero checkpoint interval would checkpoint never... or always;
            // neither reading is useful.
            "mine --input x --durable-dir /tmp/d --checkpoint-every 0",
        ] {
            assert!(parse(&to_args(args)).is_err(), "{args}");
        }
    }
}
