//! `fsm` — mine frequent connected subgraphs from a file-based graph stream.
//!
//! Two input families are supported:
//!
//! * **FIMI** transaction files (`--format fimi`): every line is one graph
//!   transaction whose integer items are edge identifiers laid out on a path
//!   graph (item *i* = edge between vertices *i+1* and *i+2*), matching the
//!   convention of the benchmark harness;
//! * **N-Triples** linked-data dumps (`--format ntriples`): resource-linking
//!   statements become edges, grouped into one graph per subject (or per
//!   `--group-size` statements).
//!
//! The stream is cut into `--batch-size` batches, mined over a sliding window
//! of `--window` batches with the selected algorithm, and the frequent
//! connected collections of the final window are printed (optionally closed /
//! maximal / top-k, as text or CSV).
//!
//! `--threads N` sets the mining worker count for **all five** algorithms
//! (per-pivot FP-trees for the horizontal family, per-singleton subtrees for
//! the vertical family); `0` uses every core, and the output is identical
//! for any setting.  Capture is incremental regardless of threading: each
//! batch is one appended row segment, so ingest cost tracks the batch, not
//! the window.  Reads are incremental too — mining runs off a zero-copy
//! window view on the memory backend, and the stderr summary reports how
//! many words the read path had to materialise (zero in the steady state).
//!
//! `--concurrent` overlaps mining with ingest: after every ingested batch
//! the writer freezes an immutable epoch snapshot
//! ([`fsm_core::StreamMiner::snapshot`]) and hands it to a worker thread,
//! which mines each slide while later batches keep appending.  Snapshot
//! mining is property-tested byte-identical to stop-the-world mining at the
//! same epoch, so the printed output matches a sequential run exactly.
//!
//! `--delta` switches mining to incremental maintenance: the frequent-pattern
//! set is mined after every ingested batch, and each mine only re-examines
//! the patterns a window slide could have affected (per-segment support
//! contributions, a border set of nearly-frequent extensions, and targeted
//! re-expansion — see `fsm_core::DeltaMiner`).  Delta mining is
//! property-tested byte-identical to a full re-mine at every epoch, so the
//! printed output matches a non-delta run exactly; the stderr summary gains a
//! line reporting how many patterns the final slide actually touched.
//!
//! `--backend` picks where the window lives (`disk`, the paper's default
//! space posture, or `memory`), and `--cache-budget BYTES` lets the disk
//! backend pin up to that many bytes of decoded row chunks: mining then
//! reads rows *straight from the pinned chunks* — zero per-mine flat-row
//! assembly for every row the budget holds — so steady-state disk mines
//! re-read only the pages a window slide invalidated and materialise
//! nothing, matching the memory backend.  The stderr summary reports the
//! pages fetched, cache hits and pinned-row count of the final mine
//! alongside the read-amplification line.  Combining `--cache-budget` with
//! `--backend memory` is rejected up front rather than silently ignored.
//!
//! `--durable-dir DIR` makes the run crash-recoverable: every ingested batch
//! is WAL-logged and `fsync`ed before it mutates the window, and the window
//! metadata is checkpointed into `DIR` every `--checkpoint-every` slides.
//! After a crash (simulate one with `--crash-after N`, which calls `abort()`
//! after N ingested batches), re-running with `--recover` rebuilds the exact
//! pre-crash window from the newest valid checkpoint plus WAL replay, skips
//! the input prefix that window already covers, and continues the stream —
//! the final output is identical to a run that never crashed.

mod args;

use std::process::ExitCode;

use args::{InputFormat, Options, OutputKind};
use fsm_core::{closed_patterns, maximal_patterns, top_k, StreamMinerBuilder};
use fsm_datagen::read_fimi;
use fsm_linked_data::{ntriples, GroupingStrategy, TripleStreamAdapter};
use fsm_stream::BatchBuilder;
use fsm_types::{EdgeCatalog, FrequentPattern, Result, Transaction, VertexId};

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let options = match args::parse(&raw) {
        Ok(options) => options,
        Err(err) => {
            eprintln!("{err}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

fn run(options: &Options) -> Result<()> {
    let (catalog, transactions) = load(options)?;
    eprintln!(
        "loaded {} transactions over {} distinct edges from {}",
        transactions.len(),
        catalog.num_edges(),
        options.input
    );

    let mut builder = StreamMinerBuilder::new()
        .algorithm(options.algorithm)
        .window_batches(options.window)
        .min_support(options.minsup)
        .threads(options.threads)
        .backend(options.backend.clone())
        .cache_budget_bytes(options.cache_budget)
        .delta(options.delta)
        .catalog(catalog.clone());
    if let Some(max) = options.max_len {
        builder = builder.max_pattern_len(max);
    }
    if let Some(dir) = &options.durable_dir {
        builder = builder
            .durable(dir.as_str())
            .checkpoint_every(options.checkpoint_every);
    }
    if options.recover {
        builder = builder.recover();
    }
    let mut miner = builder.build()?;

    // A recovered miner already holds batches 0..=last; resume the stream
    // after them.  Batches are fixed-size, so skipping the covered input
    // prefix reproduces the exact batch boundaries of the original run.
    let next_batch_id = miner.last_batch_id().map_or(0, |id| id + 1);
    if let Some(report) = miner.recovery_report() {
        eprintln!(
            "recovered window through batch {:?}: checkpoint seq {:?}, {} WAL batches replayed",
            miner.last_batch_id(),
            report.checkpoint_seq,
            report.replayed_batches,
        );
        if let Some(torn) = &report.wal_torn {
            eprintln!("recovery: truncated torn WAL tail ({torn})");
        }
        for skipped in &report.skipped_artifacts {
            eprintln!("recovery: skipped corrupt artifact: {skipped}");
        }
    }
    let skip = (next_batch_id as usize).saturating_mul(options.batch_size);
    let mut batcher = BatchBuilder::resume_from(options.batch_size, next_batch_id);
    let mut batches = batcher.extend(transactions.into_iter().skip(skip));
    if let Some(last) = batcher.flush() {
        batches.push(last);
    }
    let total_batches = next_batch_id as usize + batches.len();
    let mut ingested = 0usize;
    let result = if options.concurrent {
        // Concurrent mode: after every ingested batch the writer freezes an
        // epoch snapshot and hands it to a mining worker over a channel, so
        // every slide is mined *while* later batches keep ingesting.  The
        // worker's newest epoch is the final window, so its result is the
        // printed output — byte-identical to a sequential run's.
        let mut newest = None;
        let mut slides_mined = 0usize;
        std::thread::scope(|scope| -> Result<()> {
            let (jobs, worker_jobs) = std::sync::mpsc::channel::<fsm_core::MinerSnapshot>();
            let worker = scope.spawn(move || {
                let mut last = None;
                let mut mined = 0usize;
                for job in worker_jobs {
                    last = Some(job.mine());
                    mined += 1;
                }
                (mined, last)
            });
            for batch in &batches {
                miner.ingest_batch(batch)?;
                ingested += 1;
                if options.crash_after == Some(ingested) {
                    eprintln!("crash-after: aborting after {ingested} ingested batches");
                    std::process::abort();
                }
                jobs.send(miner.snapshot()?)
                    .map_err(|_| fsm_types::FsmError::config("mining worker hung up"))?;
            }
            drop(jobs);
            let (mined, last) = worker.join().expect("mining worker panicked");
            slides_mined = mined;
            newest = last;
            Ok(())
        })?;
        eprintln!(
            "concurrent: {slides_mined} window slides mined on a worker thread during ingest"
        );
        match newest {
            Some(result) => result?,
            // An empty resumed stream slides nothing: mine the window as-is.
            None => miner.mine()?,
        }
    } else if options.delta {
        // Delta mode: mine after every ingested batch so the maintained
        // pattern state advances one slide at a time; the newest result is
        // the final window's, identical to a full re-mine.
        let mut newest = None;
        for batch in &batches {
            miner.ingest_batch(batch)?;
            ingested += 1;
            if options.crash_after == Some(ingested) {
                eprintln!("crash-after: aborting after {ingested} ingested batches");
                std::process::abort();
            }
            newest = Some(miner.mine()?);
        }
        match newest {
            Some(result) => result,
            // An empty resumed stream slides nothing: mine the window as-is.
            None => miner.mine()?,
        }
    } else {
        for batch in &batches {
            miner.ingest_batch(batch)?;
            ingested += 1;
            if options.crash_after == Some(ingested) {
                // Simulated crash: no destructors, no flushes — exactly the
                // failure mode the WAL + checkpoint layer must survive.
                eprintln!("crash-after: aborting after {ingested} ingested batches");
                std::process::abort();
            }
        }
        miner.mine()?
    };
    eprintln!(
        "mined window of {} transactions ({} batches in stream) with {} in {:?}",
        result.stats().window_transactions,
        total_batches,
        options.algorithm,
        result.stats().elapsed
    );
    eprintln!(
        "read path: {} words materialised for this mine call{}",
        result.stats().read_words_assembled,
        if result.stats().read_words_assembled == 0 {
            " (zero-copy window view)"
        } else {
            " (disk-backend row assembly)"
        }
    );
    if !matches!(options.backend, fsm_storage::StorageBackend::Memory) {
        let budget = match options.cache_budget {
            0 => "disabled".to_string(),
            usize::MAX => "unlimited".to_string(),
            bytes => format!("{bytes} bytes"),
        };
        eprintln!(
            "disk cache: {} pages read, {} chunk-cache hits, {} rows mined from \
             pinned chunks (budget {budget})",
            result.stats().pages_read,
            result.stats().cache_hits,
            result.stats().rows_pinned,
        );
    }
    if options.delta {
        eprintln!("delta: {}", result.stats().delta);
    }
    if options.durable_dir.is_some() {
        eprintln!(
            "durability: {} WAL bytes written, {} fsyncs, {} checkpoint bytes, \
             {} batches replayed by recovery",
            result.stats().wal_bytes_written,
            result.stats().fsyncs,
            result.stats().checkpoint_bytes,
            result.stats().recovery_replayed_batches,
        );
    }

    let mut patterns: Vec<FrequentPattern> = match options.output {
        OutputKind::All => result.patterns().to_vec(),
        OutputKind::Closed => closed_patterns(&result),
        OutputKind::Maximal => maximal_patterns(&result),
    };
    if let Some(k) = options.top_k {
        let selected = top_k(&result, k);
        patterns.retain(|p| selected.contains(p));
    }

    if options.csv {
        println!("edges,support");
        for pattern in &patterns {
            let edges: Vec<String> = pattern.edges.iter().map(|e| e.0.to_string()).collect();
            println!("{},{}", edges.join(" "), pattern.support);
        }
    } else {
        println!("{} frequent connected collections:", patterns.len());
        for pattern in &patterns {
            println!("  {pattern}");
        }
    }
    Ok(())
}

/// Loads the input file as (catalog, transactions).
fn load(options: &Options) -> Result<(EdgeCatalog, Vec<Transaction>)> {
    match options.format {
        InputFormat::Fimi => {
            let transactions = read_fimi(&options.input)?;
            let max_item = transactions
                .iter()
                .flat_map(|t| t.iter())
                .map(|e| e.0 + 1)
                .max()
                .unwrap_or(0);
            // Items live on a path graph so that "connected" is well defined;
            // this matches the convention of the benchmark harness.
            let mut catalog = EdgeCatalog::new();
            for i in 0..max_item {
                catalog.intern(VertexId::new(i + 1), VertexId::new(i + 2));
            }
            Ok((catalog, transactions))
        }
        InputFormat::NTriples => {
            let text = std::fs::read_to_string(&options.input)?;
            let triples = ntriples::parse(&text)?;
            let strategy = match options.group_size {
                Some(n) => GroupingStrategy::FixedSize(n),
                None => GroupingStrategy::BySubject,
            };
            let mut adapter = TripleStreamAdapter::new(strategy);
            let snapshots = adapter.convert(&triples);
            let mut catalog = EdgeCatalog::new();
            let transactions = snapshots
                .iter()
                .map(|s| s.intern_into(&mut catalog))
                .collect();
            Ok((catalog, transactions))
        }
    }
}
