//! `fsmd` — the multi-tenant streaming mining service.
//!
//! A long-lived process hosting many independent sliding windows (one per
//! tenant) behind a length-prefixed TCP protocol.  The heavy lifting lives
//! in the layers below; this crate is deliberately thin glue:
//!
//! * [`fsm_core::SessionRegistry`] owns the tenants — per-tenant windows,
//!   bounded ingest queues with backpressure, mine-on-every-slide
//!   subscriptions, and durable namespacing under one root;
//! * one [`fsm_pool::WorkerPool`] multiplexes every tenant's mining
//!   subtree tasks over a fixed thread set ([`fsm_core::Exec::pool`]);
//! * one [`fsm_storage::BudgetGovernor`] arbitrates a process-wide
//!   chunk-cache cap across the disk-backed tenants.
//!
//! [`proto`] defines the wire format, [`server`] the accept loop and
//! request dispatch, [`client`] a blocking client used by the `fsmd drive`
//! CLI mode, the CI smoke test and the integration tests.  Served output
//! is byte-identical to a standalone single-tenant run of the same batch
//! sequence — the tenant-isolation property the whole refactor is gated
//! on.

pub mod client;
pub mod proto;
pub mod server;

pub use client::FsmdClient;
pub use proto::{Opcode, Status, TenantSpec, TenantStatus};
pub use server::{serve, ServerHandle};
