//! Blocking `fsmd` client: one TCP connection, strict request/response.
//!
//! Used by `fsmd drive`, the CI smoke test and the integration tests.
//! Server-side failures come back as [`FsmError`]s: a [`Status::Err`]
//! response surfaces as [`FsmError::InvalidConfig`] carrying the server's message,
//! and a [`Status::Backpressure`] response as [`FsmError::Backpressure`] —
//! the caller retries, nothing was accepted.  [`FsmdClient::ingest_retrying`]
//! wraps that retry loop for producers that just want the batch delivered.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use fsm_types::{Batch, FrequentPattern, FsmError, Result};

use crate::proto::{
    check_hello, put_str, read_frame, take_patterns, write_frame, Cursor, Opcode, Status,
    TenantSpec, TenantStatus,
};

/// A blocking client over one `fsmd` connection.
#[derive(Debug)]
pub struct FsmdClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl FsmdClient {
    /// Connects to a listening server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        };
        // The server leads with a hello frame; refuse to speak to a peer
        // from a different protocol era (or a non-fsmd listener).
        let hello = read_frame(&mut client.reader)?
            .ok_or_else(|| FsmError::config("server hung up before the protocol hello"))?;
        check_hello(&hello)?;
        Ok(client)
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<()> {
        self.call(&[Opcode::Ping as u8], "").map(|_| ())
    }

    /// Creates a tenant from a spec.
    pub fn create_tenant(&mut self, spec: &TenantSpec) -> Result<()> {
        let mut request = vec![Opcode::CreateTenant as u8];
        spec.encode_into(&mut request);
        self.call(&request, &spec.tenant).map(|_| ())
    }

    /// Recovers a durable tenant from the server's durable root.  The spec
    /// must match the run being recovered, exactly as in the single-tenant
    /// case.
    pub fn recover_tenant(&mut self, spec: &TenantSpec) -> Result<()> {
        let mut request = vec![Opcode::RecoverTenant as u8];
        spec.encode_into(&mut request);
        self.call(&request, &spec.tenant).map(|_| ())
    }

    /// Ingests one batch.  Returns `true` when the batch reached the window
    /// immediately, `false` when it parked in the tenant's ingest queue;
    /// [`FsmError::Backpressure`] means the queue was full and *nothing* was
    /// accepted — retry the same batch.
    pub fn ingest(&mut self, tenant: &str, batch: &Batch) -> Result<bool> {
        let mut request = vec![Opcode::Ingest as u8];
        put_str(&mut request, tenant);
        request.extend_from_slice(&fsm_dsmatrix::encode_batch(batch));
        let body = self.call(&request, tenant)?;
        let mut cursor = Cursor::new(&body);
        let applied = cursor.take_u8()? != 0;
        cursor.finish()?;
        Ok(applied)
    }

    /// [`FsmdClient::ingest`] with bounded exponential backoff on
    /// backpressure — the shape a well-behaved producer takes.
    pub fn ingest_retrying(&mut self, tenant: &str, batch: &Batch) -> Result<bool> {
        let mut pause = Duration::from_micros(50);
        loop {
            match self.ingest(tenant, batch) {
                Err(FsmError::Backpressure { .. }) => {
                    std::thread::sleep(pause);
                    pause = (pause * 2).min(Duration::from_millis(20));
                }
                other => return other,
            }
        }
    }

    /// Mines the tenant's current window (queued ingests drain first) and
    /// returns the frequent connected patterns in canonical order.
    pub fn mine(&mut self, tenant: &str) -> Result<Vec<FrequentPattern>> {
        let mut request = vec![Opcode::Mine as u8];
        put_str(&mut request, tenant);
        let body = self.call(&request, tenant)?;
        let mut cursor = Cursor::new(&body);
        let patterns = take_patterns(&mut cursor)?;
        cursor.finish()?;
        Ok(patterns)
    }

    /// Drops a tenant.
    pub fn drop_tenant(&mut self, tenant: &str) -> Result<()> {
        let mut request = vec![Opcode::DropTenant as u8];
        put_str(&mut request, tenant);
        self.call(&request, tenant).map(|_| ())
    }

    /// Live tenant ids, sorted.
    pub fn list_tenants(&mut self) -> Result<Vec<String>> {
        Ok(self
            .list_tenants_detailed()?
            .into_iter()
            .map(|status| status.tenant)
            .collect())
    }

    /// Live tenants with their lifecycle status — state, resident bytes
    /// and thaw statistics — sorted by id.
    pub fn list_tenants_detailed(&mut self) -> Result<Vec<TenantStatus>> {
        let body = self.call(&[Opcode::ListTenants as u8], "")?;
        let mut cursor = Cursor::new(&body);
        let count = cursor.take_u32()? as usize;
        let mut tenants = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            tenants.push(TenantStatus::decode(&mut cursor)?);
        }
        cursor.finish()?;
        Ok(tenants)
    }

    /// Registers this connection for the tenant's mine-on-every-slide
    /// output; fetch results with [`FsmdClient::poll`].
    pub fn subscribe(&mut self, tenant: &str) -> Result<()> {
        let mut request = vec![Opcode::Subscribe as u8];
        put_str(&mut request, tenant);
        self.call(&request, tenant).map(|_| ())
    }

    /// The newest published result this connection has not seen yet, if
    /// any.  Slides between polls coalesce to the latest epoch.
    pub fn poll(&mut self, tenant: &str) -> Result<Option<Vec<FrequentPattern>>> {
        let mut request = vec![Opcode::Poll as u8];
        put_str(&mut request, tenant);
        let body = self.call(&request, tenant)?;
        let mut cursor = Cursor::new(&body);
        let fresh = cursor.take_u8()? != 0;
        let result = if fresh {
            Some(take_patterns(&mut cursor)?)
        } else {
            None
        };
        cursor.finish()?;
        Ok(result)
    }

    /// One round trip: write the request frame, read the response frame,
    /// strip the status byte.  `tenant` only labels backpressure errors.
    fn call(&mut self, request: &[u8], tenant: &str) -> Result<Vec<u8>> {
        write_frame(&mut self.writer, request)?;
        let response = read_frame(&mut self.reader)?
            .ok_or_else(|| FsmError::config("server hung up mid-request"))?;
        let mut cursor = Cursor::new(&response);
        match cursor.take_u8()? {
            s if s == Status::Ok as u8 => Ok(cursor.rest().to_vec()),
            s if s == Status::Err as u8 => {
                let message = cursor.take_str()?;
                Err(FsmError::config(format!("server: {message}")))
            }
            s if s == Status::Backpressure as u8 => Err(FsmError::backpressure(tenant)),
            other => Err(FsmError::parse(format!(
                "unknown response status {other:#04x}"
            ))),
        }
    }
}
