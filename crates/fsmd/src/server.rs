//! The `fsmd` accept loop and request dispatch.
//!
//! One thread accepts connections; each connection gets its own thread, a
//! buffered reader/writer pair and a private map of live subscriptions, and
//! serves requests strictly in order (the protocol is request/response, no
//! pipelining).  All connections share one [`SessionRegistry`] — tenant
//! state, the worker pool and the budget governor live there, so a tenant
//! may be fed from one connection and mined from another.
//!
//! Per-request panics are caught and turned into [`Status::Err`] responses:
//! a bug mining one tenant's window must not tear down the process hosting
//! every other tenant.  Shutdown is cooperative — [`ServerHandle::shutdown`]
//! raises a flag and wakes the acceptor with a self-connection; connection
//! threads notice the flag after their current request and hang up.

use std::collections::HashMap;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use fsm_core::{Algorithm, IngestOutcome, MinerConfig, SessionRegistry, Subscription};
use fsm_storage::StorageBackend;
use fsm_stream::WindowConfig;
use fsm_types::{EdgeCatalog, FsmError, MinSup, Result, VertexId};

use crate::proto::{
    encode_hello, put_patterns, put_str, read_frame, write_frame, Cursor, Opcode, Status,
    TenantSpec, TenantStatus,
};

/// A running server: the bound address plus the shutdown handle.
#[derive(Debug)]
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves `:0` port requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting connections and joins the acceptor thread.
    /// Connection threads hang up after their in-flight request.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Blocks until the acceptor exits — the `fsmd serve` foreground mode.
    pub fn wait(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a throwaway self-connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_and_join();
        }
    }
}

/// Binds `listen` (e.g. `127.0.0.1:0`) and serves `registry` until the
/// returned handle shuts the server down.
pub fn serve(registry: Arc<SessionRegistry>, listen: &str) -> Result<ServerHandle> {
    let listener = TcpListener::bind(listen)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || loop {
            let Ok((stream, _)) = listener.accept() else {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            };
            if stop.load(Ordering::SeqCst) {
                return;
            }
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _ = serve_connection(&registry, stream, &stop);
            });
        })
    };
    Ok(ServerHandle {
        local_addr,
        stop,
        acceptor: Some(acceptor),
    })
}

/// Serves one connection until EOF, an I/O error or shutdown.
fn serve_connection(
    registry: &SessionRegistry,
    stream: TcpStream,
    stop: &AtomicBool,
) -> Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    // Version handshake first: a peer from a different protocol era gets a
    // clean mismatch error instead of misparsing response bodies.
    write_frame(&mut writer, &encode_hello())?;
    let mut subscriptions: HashMap<String, Subscription> = HashMap::new();
    while !stop.load(Ordering::SeqCst) {
        let Some(request) = read_frame(&mut reader)? else {
            return Ok(()); // clean hang-up at a frame boundary
        };
        let response = respond(registry, &mut subscriptions, &request);
        write_frame(&mut writer, &response)?;
    }
    Ok(())
}

/// Turns one request into one response payload; never panics out.
fn respond(
    registry: &SessionRegistry,
    subscriptions: &mut HashMap<String, Subscription>,
    request: &[u8],
) -> Vec<u8> {
    let handled = catch_unwind(AssertUnwindSafe(|| {
        handle(registry, subscriptions, request)
    }))
    .unwrap_or_else(|panic| {
        let what = panic
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(FsmError::corrupt(format!(
            "request handler panicked: {what}"
        )))
    });
    match handled {
        Ok(body) => {
            let mut out = Vec::with_capacity(1 + body.len());
            out.push(Status::Ok as u8);
            out.extend_from_slice(&body);
            out
        }
        Err(FsmError::Backpressure { .. }) => vec![Status::Backpressure as u8],
        Err(err) => {
            let mut out = vec![Status::Err as u8];
            put_str(&mut out, &err.to_string());
            out
        }
    }
}

/// Decodes and executes one request, returning the `Ok`-status body.
fn handle(
    registry: &SessionRegistry,
    subscriptions: &mut HashMap<String, Subscription>,
    request: &[u8],
) -> Result<Vec<u8>> {
    let mut cursor = Cursor::new(request);
    let opcode = Opcode::decode(cursor.take_u8()?)?;
    match opcode {
        Opcode::Ping => {
            cursor.finish()?;
            Ok(Vec::new())
        }
        Opcode::CreateTenant | Opcode::RecoverTenant => {
            let spec = TenantSpec::decode(&mut cursor)?;
            cursor.finish()?;
            let config = miner_config(&spec)?;
            if opcode == Opcode::CreateTenant {
                registry.create_tenant(&spec.tenant, config, spec.durable)?;
            } else {
                registry.recover_tenant(&spec.tenant, config)?;
            }
            Ok(Vec::new())
        }
        Opcode::Ingest => {
            let tenant = cursor.take_str()?;
            let batch = fsm_dsmatrix::decode_batch(cursor.rest())?;
            let outcome = registry.get(&tenant)?.ingest(&batch)?;
            Ok(vec![matches!(outcome, IngestOutcome::Applied(_)) as u8])
        }
        Opcode::Mine => {
            let tenant = cursor.take_str()?;
            cursor.finish()?;
            let result = registry.get(&tenant)?.mine()?;
            let mut body = Vec::new();
            put_patterns(&mut body, result.patterns());
            Ok(body)
        }
        Opcode::DropTenant => {
            let tenant = cursor.take_str()?;
            cursor.finish()?;
            subscriptions.remove(&tenant);
            registry.drop_tenant(&tenant)?;
            Ok(Vec::new())
        }
        Opcode::ListTenants => {
            cursor.finish()?;
            let statuses = registry.statuses();
            let mut body = Vec::new();
            body.extend_from_slice(&(statuses.len() as u32).to_le_bytes());
            for (tenant, status) in &statuses {
                TenantStatus {
                    tenant: tenant.clone(),
                    state: status.state,
                    resident_bytes: status.resident_bytes,
                    thaws: status.thaws,
                    thaw_nanos: status.thaw_nanos,
                }
                .encode_into(&mut body);
            }
            Ok(body)
        }
        Opcode::Subscribe => {
            let tenant = cursor.take_str()?;
            cursor.finish()?;
            let subscription = registry.get(&tenant)?.subscribe();
            subscriptions.insert(tenant, subscription);
            Ok(Vec::new())
        }
        Opcode::Poll => {
            let tenant = cursor.take_str()?;
            cursor.finish()?;
            let subscription = subscriptions.get_mut(&tenant).ok_or_else(|| {
                FsmError::config(format!(
                    "tenant {tenant:?} is not subscribed on this connection"
                ))
            })?;
            match subscription.poll() {
                None => Ok(vec![0]),
                Some(result) => {
                    let mut body = vec![1];
                    put_patterns(&mut body, result.patterns());
                    Ok(body)
                }
            }
        }
    }
}

/// Materialises the [`MinerConfig`] a [`TenantSpec`] describes.  Durable
/// directories and the governor stay the registry's business.
pub fn miner_config(spec: &TenantSpec) -> Result<MinerConfig> {
    let algorithm = *Algorithm::ALL.get(spec.algorithm as usize).ok_or_else(|| {
        FsmError::config(format!(
            "algorithm index {} out of range 0..{}",
            spec.algorithm,
            Algorithm::ALL.len()
        ))
    })?;
    let catalog = match spec.catalog_kind {
        // The FIMI convention: item i = edge between path vertices i+1, i+2.
        0 => {
            let mut catalog = EdgeCatalog::new();
            for i in 0..spec.catalog_n {
                catalog.intern(VertexId::new(i + 1), VertexId::new(i + 2));
            }
            catalog
        }
        1 => EdgeCatalog::complete(spec.catalog_n),
        other => {
            return Err(FsmError::config(format!(
                "unknown catalog kind {other} (0 = path, 1 = complete)"
            )))
        }
    };
    let backend = match spec.backend {
        0 => StorageBackend::Memory,
        1 => StorageBackend::DiskTemp,
        other => {
            return Err(FsmError::config(format!(
                "unknown backend {other} (0 = memory, 1 = disk)"
            )))
        }
    };
    let min_support = if spec.minsup_absolute {
        MinSup::absolute(spec.minsup)
    } else {
        MinSup::relative(f64::from_bits(spec.minsup))
    };
    Ok(MinerConfig {
        algorithm,
        window: WindowConfig::new(spec.window_batches as usize)?,
        min_support,
        backend,
        catalog: Some(catalog),
        cache_budget_bytes: spec.cache_budget as usize,
        delta: spec.delta,
        ..MinerConfig::default()
    })
}
