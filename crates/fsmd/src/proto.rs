//! The `fsmd` wire protocol: length-prefixed binary frames over TCP.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! [payload length: u32 LE][payload bytes]
//! ```
//!
//! Immediately after accepting a connection — before any request — the
//! server sends one *hello* frame: the [`PROTO_MAGIC`] bytes followed by a
//! `u16` [`PROTO_VERSION`].  The client checks both and hangs up with a
//! clean version error on mismatch, so incompatible peers never get far
//! enough to misparse each other's bodies (the `list` body changed shape
//! in version 2, for instance).
//!
//! A request payload starts with an opcode byte; a response payload starts
//! with a status byte ([`Status`]): `Ok` carries a request-specific body,
//! `Err` a UTF-8 message, and `Backpressure` tells the producer to retry —
//! the tenant's ingest queue was full, nothing was accepted.  Batch bodies
//! reuse the durable layer's WAL encoding ([`fsm_dsmatrix::encode_batch`] /
//! [`fsm_dsmatrix::decode_batch`]), so a byte captured on the wire is the
//! byte a WAL replay would apply.  All integers are little-endian; strings
//! are `u16` length + UTF-8; pattern lists are `u32` count, then per
//! pattern `u64` support, `u16` edge count and the raw `u32` edge ids in
//! canonical order.

use std::io::{Read, Write};

use fsm_core::LifecycleState;
use fsm_types::{EdgeSet, FrequentPattern, FsmError, Result};

/// Upper bound on a frame payload; a peer announcing more is treated as
/// corrupt rather than allocated for.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// First bytes of the server's hello frame — identifies the protocol
/// before any version arithmetic happens.
pub const PROTO_MAGIC: [u8; 4] = *b"FSMD";

/// Wire protocol version, announced in the hello frame.  History:
///
/// - 1 — initial protocol; `list` `Ok` body was `u32` count + tenant ids.
/// - 2 — `list` `Ok` body is `u32` count + [`TenantStatus`] records
///   (lifecycle state, resident bytes, thaw stats).
pub const PROTO_VERSION: u16 = 2;

/// Builds the hello payload the server sends on accept.
pub fn encode_hello() -> Vec<u8> {
    let mut out = Vec::with_capacity(PROTO_MAGIC.len() + 2);
    out.extend_from_slice(&PROTO_MAGIC);
    out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
    out
}

/// Validates a received hello payload: right magic, same version.
pub fn check_hello(payload: &[u8]) -> Result<()> {
    let mut cursor = Cursor::new(payload);
    let magic = cursor.take(PROTO_MAGIC.len())?;
    if magic != PROTO_MAGIC {
        return Err(FsmError::parse(
            "peer did not send the fsmd protocol magic — not an fsmd server?",
        ));
    }
    let version = cursor.take_u16()?;
    if version != PROTO_VERSION {
        return Err(FsmError::config(format!(
            "fsmd protocol version mismatch: peer speaks {version}, this \
             build speaks {PROTO_VERSION}"
        )));
    }
    cursor.finish()
}

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness check; empty `Ok` response.
    Ping = 0x01,
    /// Create a tenant: [`TenantSpec`] body.
    CreateTenant = 0x02,
    /// Recover a durable tenant: [`TenantSpec`] body (`durable` implied).
    RecoverTenant = 0x03,
    /// Ingest one batch: tenant string + WAL-encoded batch.  `Ok` body is
    /// one byte: `1` applied to the window, `0` parked in the ingest queue.
    Ingest = 0x04,
    /// Mine the tenant's current window: tenant string.  `Ok` body is a
    /// pattern list.
    Mine = 0x05,
    /// Drop a tenant: tenant string; empty `Ok` response.
    DropTenant = 0x06,
    /// List live tenants; `Ok` body is `u32` count + one [`TenantStatus`]
    /// record per tenant (id, lifecycle state, resident bytes, thaw stats).
    ListTenants = 0x07,
    /// Register this connection for the tenant's mine-on-every-slide
    /// output: tenant string; empty `Ok` response.
    Subscribe = 0x08,
    /// Fetch the newest unseen published result for a subscribed tenant:
    /// tenant string.  `Ok` body is one byte `0` (nothing new) or `1`
    /// followed by a pattern list.
    Poll = 0x09,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn decode(byte: u8) -> Result<Self> {
        Ok(match byte {
            0x01 => Self::Ping,
            0x02 => Self::CreateTenant,
            0x03 => Self::RecoverTenant,
            0x04 => Self::Ingest,
            0x05 => Self::Mine,
            0x06 => Self::DropTenant,
            0x07 => Self::ListTenants,
            0x08 => Self::Subscribe,
            0x09 => Self::Poll,
            other => return Err(FsmError::parse(format!("unknown opcode {other:#04x}"))),
        })
    }
}

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request succeeded; body is request-specific.
    Ok = 0x00,
    /// Request failed; body is a UTF-8 message.
    Err = 0x01,
    /// The tenant's ingest queue is full; retry the same request later.
    Backpressure = 0x02,
}

/// The over-the-wire tenant configuration — the subset of
/// [`fsm_core::MinerConfig`] a remote client may set.  Durable directories
/// and budget governance stay server-side policy.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant id (validated server-side).
    pub tenant: String,
    /// Index into [`fsm_core::Algorithm::ALL`].
    pub algorithm: u8,
    /// Sliding-window size in batches.
    pub window_batches: u32,
    /// `true` = `minsup` is an absolute count; `false` = `minsup` carries
    /// `f64` bits of a relative fraction.
    pub minsup_absolute: bool,
    /// Absolute support or `f64::to_bits` of the relative fraction.
    pub minsup: u64,
    /// `0` = path graph with `catalog_n` edges (the FIMI convention),
    /// `1` = complete graph over `catalog_n` vertices.
    pub catalog_kind: u8,
    /// Edge or vertex count, per `catalog_kind`.
    pub catalog_n: u32,
    /// `0` = memory backend, `1` = disk.
    pub backend: u8,
    /// Desired decoded-chunk cache budget (leased from the server's
    /// governor when one is configured).
    pub cache_budget: u64,
    /// Root this tenant under the server's durable root.
    pub durable: bool,
    /// Maintain the pattern set incrementally across slides.
    pub delta: bool,
}

impl TenantSpec {
    /// A memory-backend spec with the given algorithm index, window and
    /// absolute support — the common test/drive shape.
    pub fn new(tenant: impl Into<String>) -> Self {
        Self {
            tenant: tenant.into(),
            algorithm: 4, // DirectVertical
            window_batches: 2,
            minsup_absolute: true,
            minsup: 2,
            catalog_kind: 1,
            catalog_n: 4,
            backend: 0,
            cache_budget: 0,
            durable: false,
            delta: false,
        }
    }

    /// Serialises the spec (without the opcode byte).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_str(out, &self.tenant);
        out.push(self.algorithm);
        out.extend_from_slice(&self.window_batches.to_le_bytes());
        out.push(self.minsup_absolute as u8);
        out.extend_from_slice(&self.minsup.to_le_bytes());
        out.push(self.catalog_kind);
        out.extend_from_slice(&self.catalog_n.to_le_bytes());
        out.push(self.backend);
        out.extend_from_slice(&self.cache_budget.to_le_bytes());
        out.push(self.durable as u8);
        out.push(self.delta as u8);
    }

    /// Parses a spec from a request body.
    pub fn decode(cursor: &mut Cursor<'_>) -> Result<Self> {
        Ok(Self {
            tenant: cursor.take_str()?,
            algorithm: cursor.take_u8()?,
            window_batches: cursor.take_u32()?,
            minsup_absolute: cursor.take_u8()? != 0,
            minsup: cursor.take_u64()?,
            catalog_kind: cursor.take_u8()?,
            catalog_n: cursor.take_u32()?,
            backend: cursor.take_u8()?,
            cache_budget: cursor.take_u64()?,
            durable: cursor.take_u8()? != 0,
            delta: cursor.take_u8()? != 0,
        })
    }
}

/// One tenant's entry in a `list` response: id plus the lifecycle
/// bookkeeping the registry reports ([`fsm_core::SessionStatus`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStatus {
    /// Tenant id.
    pub tenant: String,
    /// Residency lifecycle state.
    pub state: LifecycleState,
    /// Bytes of resident window state (`0` while spilled).
    pub resident_bytes: u64,
    /// Transparent thaws performed over the tenant's lifetime.
    pub thaws: u64,
    /// Total nanoseconds spent in those thaws.
    pub thaw_nanos: u64,
}

impl TenantStatus {
    /// Serialises one status record.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        put_str(out, &self.tenant);
        out.push(self.state.code());
        out.extend_from_slice(&self.resident_bytes.to_le_bytes());
        out.extend_from_slice(&self.thaws.to_le_bytes());
        out.extend_from_slice(&self.thaw_nanos.to_le_bytes());
    }

    /// Parses one status record.
    pub fn decode(cursor: &mut Cursor<'_>) -> Result<Self> {
        let tenant = cursor.take_str()?;
        let code = cursor.take_u8()?;
        let state = LifecycleState::from_code(code)
            .ok_or_else(|| FsmError::parse(format!("unknown lifecycle state code {code}")))?;
        Ok(Self {
            tenant,
            state,
            resident_bytes: cursor.take_u64()?,
            thaws: cursor.take_u64()?,
            thaw_nanos: cursor.take_u64()?,
        })
    }
}

/// Writes one frame.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(FsmError::config(format!(
            "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte limit",
            payload.len()
        )));
    }
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match reader.read_exact(&mut len) {
        Ok(()) => {}
        Err(err) if err.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(err) => return Err(err.into()),
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FsmError::parse(format!(
            "peer announced a {len}-byte frame (limit {MAX_FRAME_BYTES})"
        )));
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Appends a `u16`-length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    let len = s.len().min(u16::MAX as usize) as u16;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&s.as_bytes()[..len as usize]);
}

/// Appends a pattern list in wire order.
pub fn put_patterns(out: &mut Vec<u8>, patterns: &[FrequentPattern]) {
    out.extend_from_slice(&(patterns.len() as u32).to_le_bytes());
    for pattern in patterns {
        out.extend_from_slice(&pattern.support.to_le_bytes());
        let edges: Vec<u32> = pattern.edges.iter().map(|e| e.0).collect();
        out.extend_from_slice(&(edges.len() as u16).to_le_bytes());
        for edge in edges {
            out.extend_from_slice(&edge.to_le_bytes());
        }
    }
}

/// Reads a pattern list written by [`put_patterns`].
pub fn take_patterns(cursor: &mut Cursor<'_>) -> Result<Vec<FrequentPattern>> {
    let count = cursor.take_u32()? as usize;
    let mut patterns = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let support = cursor.take_u64()?;
        let num_edges = cursor.take_u16()? as usize;
        let mut edges = Vec::with_capacity(num_edges);
        for _ in 0..num_edges {
            edges.push(cursor.take_u32()?);
        }
        patterns.push(FrequentPattern::new(EdgeSet::from_raw(edges), support));
    }
    Ok(patterns)
}

/// A bounds-checked reader over one frame payload.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    offset: usize,
}

impl<'a> Cursor<'a> {
    /// Wraps a payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, offset: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .offset
            .checked_add(n)
            .filter(|e| *e <= self.bytes.len());
        let Some(end) = end else {
            return Err(FsmError::parse(format!(
                "frame truncated at byte {} of {}",
                self.offset,
                self.bytes.len()
            )));
        };
        let slice = &self.bytes[self.offset..end];
        self.offset = end;
        Ok(slice)
    }

    /// One byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16> {
        let mut bytes = [0u8; 2];
        bytes.copy_from_slice(self.take(2)?);
        Ok(u16::from_le_bytes(bytes))
    }

    /// Little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let mut bytes = [0u8; 4];
        bytes.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(bytes))
    }

    /// Little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(bytes))
    }

    /// `u16`-length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let len = self.take_u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| FsmError::parse("frame string is not valid UTF-8"))
    }

    /// Everything not yet consumed.
    pub fn rest(&mut self) -> &'a [u8] {
        let rest = &self.bytes[self.offset..];
        self.offset = self.bytes.len();
        rest
    }

    /// Errors if unconsumed bytes remain — requests are exact, trailing
    /// garbage means a framing bug.
    pub fn finish(self) -> Result<()> {
        if self.offset != self.bytes.len() {
            return Err(FsmError::parse(format!(
                "{} trailing bytes in frame",
                self.bytes.len() - self.offset
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut reader = &buf[..];
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut reader).unwrap().unwrap(), b"");
        assert!(read_frame(&mut reader).unwrap().is_none());
    }

    #[test]
    fn hello_round_trips_and_rejects_mismatches() {
        check_hello(&encode_hello()).unwrap();
        // Wrong magic: not an fsmd server.
        assert!(check_hello(b"HTTP\x02\x00").is_err());
        // Right magic, different era: clean version error, not a misparse.
        let mut stale = Vec::new();
        stale.extend_from_slice(&PROTO_MAGIC);
        stale.extend_from_slice(&(PROTO_VERSION - 1).to_le_bytes());
        let err = check_hello(&stale).unwrap_err().to_string();
        assert!(err.contains("version mismatch"), "{err}");
        // Truncated hello.
        assert!(check_hello(&PROTO_MAGIC).is_err());
    }

    #[test]
    fn oversized_announcements_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        assert!(read_frame(&mut &buf[..]).is_err());
    }

    #[test]
    fn tenant_specs_round_trip() {
        let spec = TenantSpec {
            tenant: "alpha".into(),
            algorithm: 3,
            window_batches: 7,
            minsup_absolute: false,
            minsup: 0.25f64.to_bits(),
            catalog_kind: 0,
            catalog_n: 40,
            backend: 1,
            cache_budget: 1 << 20,
            durable: true,
            delta: true,
        };
        let mut out = Vec::new();
        spec.encode_into(&mut out);
        let mut cursor = Cursor::new(&out);
        assert_eq!(TenantSpec::decode(&mut cursor).unwrap(), spec);
        cursor.finish().unwrap();
    }

    #[test]
    fn pattern_lists_round_trip() {
        let patterns = vec![
            FrequentPattern::new(EdgeSet::from_raw([0, 2, 5]), 4),
            FrequentPattern::new(EdgeSet::from_raw([1]), 9),
        ];
        let mut out = Vec::new();
        put_patterns(&mut out, &patterns);
        let mut cursor = Cursor::new(&out);
        assert_eq!(take_patterns(&mut cursor).unwrap(), patterns);
        cursor.finish().unwrap();
    }

    #[test]
    fn truncated_frames_error_instead_of_panicking() {
        let mut cursor = Cursor::new(&[1, 0]);
        assert!(cursor.take_u32().is_err());
        let mut cursor = Cursor::new(&[5, 0, b'a']);
        assert!(cursor.take_str().is_err());
    }
}
