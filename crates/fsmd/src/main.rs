//! `fsmd` — serve many sliding windows from one process, or drive one
//! tenant of a running server from a file.
//!
//! ```text
//! fsmd serve --listen 127.0.0.1:7878 [--pool N] [--cache-total BYTES]
//!            [--durable-root DIR] [--max-pending N] [--max-resident N]
//!            [--resident-bytes BYTES] [--spill-root DIR]
//! fsmd drive --addr 127.0.0.1:7878 --input FILE [--tenant NAME]
//!            [--algorithm NAME] [--window W] [--minsup V] [--batch-size B]
//!            [--backend memory|disk] [--cache-budget BYTES]
//!            [--durable] [--recover] [--delta] [--keep] [--verbose]
//! ```
//!
//! `serve` hosts a [`fsm_core::SessionRegistry`]: every tenant mine
//! multiplexes over one worker pool, disk-backed tenants lease chunk-cache
//! bytes from one governor, durable tenants live under
//! `--durable-root/<tenant>/`.  With `--max-resident` / `--resident-bytes`
//! the registry keeps only that much window state in memory, spilling cold
//! tenants (volatile ones under `--spill-root/<tenant>/`, durable ones via
//! their checkpoints) and thawing them transparently on the next request.
//!
//! `drive` replays a FIMI file into one tenant over the socket (honouring
//! backpressure), mines the final window and prints the patterns in
//! exactly the format of the single-tenant `fsm` CLI — `diff` against it
//! is the service's isolation smoke test.

use std::process::ExitCode;
use std::sync::Arc;

use fsm_core::{Exec, RegistryConfig, SessionRegistry, WorkerPool};
use fsm_datagen::read_fimi;
use fsm_storage::BudgetGovernor;
use fsm_stream::BatchBuilder;
use fsm_types::{FsmError, Result};

use fsm_fsmd::{serve, FsmdClient, TenantSpec};

const USAGE: &str = "\
fsmd — multi-tenant streaming frequent-subgraph mining service

USAGE:
  fsmd serve --listen HOST:PORT [OPTIONS]
  fsmd drive --addr HOST:PORT --input FILE [OPTIONS]

SERVE OPTIONS:
  --listen <HOST:PORT>  address to bind (port 0 picks one; it is printed)
  --pool <N>            shared mining worker threads (0 = all cores, default 0)
  --cache-total <BYTES> process-wide chunk-cache cap leased to disk tenants
  --durable-root <DIR>  root for per-tenant WAL/checkpoint directories
  --max-pending <N>     per-tenant ingest queue bound (default 64)
  --max-resident <N>    keep at most N tenant windows in memory; colder
                        tenants spill and thaw transparently on demand
  --resident-bytes <B>  byte cap on summed resident window state
  --spill-root <DIR>    root for volatile tenants' spill images (without
                        it only durable tenants are evictable)

DRIVE OPTIONS:
  --addr <HOST:PORT>    running fsmd server
  --input <FILE>        FIMI transaction file
  --tenant <NAME>       tenant id (default: drive)
  --algorithm <NAME>    multi-tree | single-tree | top-down | vertical |
                        direct-vertical        (default: direct-vertical)
  --minsup <VALUE>      absolute count (e.g. 20) or fraction (e.g. 0.05)
  --window <N>          sliding window size in batches     (default: 5)
  --batch-size <N>      transactions per batch             (default: 1000)
  --backend <NAME>      memory | disk                      (default: disk)
  --cache-budget <B>    desired decoded-chunk cache bytes (leased)
  --catalog-items <N>   item count for the path catalog (default: derived
                        from the input; required by --recover when the
                        input is empty)
  --durable             root the tenant under the server's durable root
  --recover             recover the tenant instead of creating it
  --delta               maintain the pattern set incrementally
  --keep                leave the tenant on the server after driving
  --verbose             also print every tenant's lifecycle state,
                        resident bytes and thaw stats after mining
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("drive") => run_drive(&args[1..]),
        Some("--help" | "-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(FsmError::config(format!(
            "unknown subcommand '{other}' (expected serve or drive)"
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls `--flag value` / `--switch` options out of an argument list.
struct Flags<'a> {
    args: &'a [String],
    switches: &'a [&'a str],
}

impl<'a> Flags<'a> {
    fn value(&self, flag: &str) -> Result<Option<&'a str>> {
        let Some(at) = self.args.iter().position(|a| a == flag) else {
            return Ok(None);
        };
        self.args
            .get(at + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| FsmError::config(format!("{flag} needs a value")))
    }

    fn present(&self, flag: &str) -> bool {
        self.args.iter().any(|a| a == flag)
    }

    fn parsed<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T> {
        match self.value(flag)? {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| FsmError::config(format!("{flag}: cannot parse {raw:?}"))),
        }
    }

    /// Rejects flags this subcommand does not know — a typo must not
    /// silently fall back to a default.
    fn check_known(&self, known: &[&str]) -> Result<()> {
        let mut expecting_value = false;
        for arg in self.args {
            if expecting_value {
                expecting_value = false;
                continue;
            }
            if !known.contains(&arg.as_str()) {
                return Err(FsmError::config(format!("unknown option '{arg}'")));
            }
            expecting_value = !self.switches.contains(&arg.as_str());
        }
        Ok(())
    }
}

fn run_serve(args: &[String]) -> Result<()> {
    let flags = Flags {
        args,
        switches: &[],
    };
    flags.check_known(&[
        "--listen",
        "--pool",
        "--cache-total",
        "--durable-root",
        "--max-pending",
        "--max-resident",
        "--resident-bytes",
        "--spill-root",
    ])?;
    let listen = flags
        .value("--listen")?
        .ok_or_else(|| FsmError::config("serve needs --listen HOST:PORT"))?;
    let pool: usize = flags.parsed("--pool", 0)?;
    let config = RegistryConfig {
        exec: Exec::pool(Arc::new(WorkerPool::new(pool))),
        governor: flags
            .value("--cache-total")?
            .map(|raw| {
                raw.parse::<usize>()
                    .map(BudgetGovernor::new)
                    .map_err(|_| FsmError::config(format!("--cache-total: cannot parse {raw:?}")))
            })
            .transpose()?,
        durable_root: flags.value("--durable-root")?.map(Into::into),
        max_pending_batches: flags.parsed("--max-pending", RegistryConfig::DEFAULT_MAX_PENDING)?,
        max_resident: flags
            .value("--max-resident")?
            .map(|raw| {
                raw.parse::<usize>()
                    .map_err(|_| FsmError::config(format!("--max-resident: cannot parse {raw:?}")))
            })
            .transpose()?,
        max_resident_bytes: flags
            .value("--resident-bytes")?
            .map(|raw| {
                raw.parse::<usize>().map_err(|_| {
                    FsmError::config(format!("--resident-bytes: cannot parse {raw:?}"))
                })
            })
            .transpose()?,
        spill_root: flags.value("--spill-root")?.map(Into::into),
    };
    let registry = Arc::new(SessionRegistry::new(config));
    let handle = serve(registry, listen)?;
    // Port 0 binds an ephemeral port; announce the resolved address so
    // scripts (and the CI smoke test) can connect.
    eprintln!("fsmd listening on {}", handle.local_addr());
    handle.wait();
    Ok(())
}

fn run_drive(args: &[String]) -> Result<()> {
    let flags = Flags {
        args,
        switches: &["--durable", "--recover", "--delta", "--keep", "--verbose"],
    };
    flags.check_known(&[
        "--addr",
        "--input",
        "--tenant",
        "--algorithm",
        "--minsup",
        "--window",
        "--batch-size",
        "--backend",
        "--cache-budget",
        "--catalog-items",
        "--durable",
        "--recover",
        "--delta",
        "--keep",
        "--verbose",
    ])?;
    let addr = flags
        .value("--addr")?
        .ok_or_else(|| FsmError::config("drive needs --addr HOST:PORT"))?;
    let input = flags
        .value("--input")?
        .ok_or_else(|| FsmError::config("drive needs --input FILE"))?;
    let tenant = flags.value("--tenant")?.unwrap_or("drive").to_string();
    let algorithm = match flags.value("--algorithm")?.unwrap_or("direct-vertical") {
        "multi-tree" => 0,
        "single-tree" => 1,
        "top-down" => 2,
        "vertical" => 3,
        "direct-vertical" | "direct" => 4,
        other => return Err(FsmError::config(format!("unknown algorithm '{other}'"))),
    };
    let (minsup_absolute, minsup) = match flags.value("--minsup")? {
        None => (true, 1),
        Some(raw) => match raw.parse::<u64>() {
            Ok(count) => (true, count),
            Err(_) => {
                let fraction: f64 = raw
                    .parse()
                    .map_err(|_| FsmError::config(format!("--minsup: cannot parse {raw:?}")))?;
                (false, fraction.to_bits())
            }
        },
    };
    let backend = match flags.value("--backend")?.unwrap_or("disk") {
        "memory" => 0,
        "disk" => 1,
        other => return Err(FsmError::config(format!("unknown backend '{other}'"))),
    };
    let window: u32 = flags.parsed("--window", 5)?;
    let batch_size: usize = flags.parsed("--batch-size", 1000)?;

    // Same input convention as the `fsm` CLI: FIMI items laid out on a
    // path graph so "connected" is well defined.
    let transactions = read_fimi(input)?;
    let max_item = transactions
        .iter()
        .flat_map(|t| t.iter())
        .map(|e| e.0 + 1)
        .max()
        .unwrap_or(0);
    // Recovery must rebuild the tenant with its *original* catalog width —
    // deriving it from the (possibly empty) recovery input would silently
    // shrink the catalog and drop every multi-edge pattern.
    let catalog_n = match flags.value("--catalog-items")? {
        Some(raw) => raw
            .parse()
            .map_err(|_| FsmError::config(format!("--catalog-items: cannot parse {raw:?}")))?,
        None if flags.present("--recover") && max_item == 0 => {
            return Err(FsmError::config(
                "--recover with an empty input needs --catalog-items \
                 (the original run's item count)",
            ));
        }
        None => max_item,
    };

    let spec = TenantSpec {
        tenant: tenant.clone(),
        algorithm,
        window_batches: window,
        minsup_absolute,
        minsup,
        catalog_kind: 0,
        catalog_n,
        backend,
        cache_budget: flags.parsed("--cache-budget", 0u64)?,
        durable: flags.present("--durable"),
        delta: flags.present("--delta"),
    };

    let mut client = FsmdClient::connect(addr)?;
    if flags.present("--recover") {
        client.recover_tenant(&spec)?;
    } else {
        client.create_tenant(&spec)?;
    }

    let mut batcher = BatchBuilder::new(batch_size);
    let mut batches = batcher.extend(transactions);
    if let Some(last) = batcher.flush() {
        batches.push(last);
    }
    let total = batches.len();
    for batch in &batches {
        client.ingest_retrying(&tenant, batch)?;
    }
    eprintln!("drove {total} batches into tenant {tenant:?}");

    let patterns = client.mine(&tenant)?;
    println!("{} frequent connected collections:", patterns.len());
    for pattern in &patterns {
        println!("  {pattern}");
    }

    if flags.present("--verbose") {
        for status in client.list_tenants_detailed()? {
            eprintln!(
                "tenant {:?}: state {} resident {} B, {} thaws ({} ns total)",
                status.tenant, status.state, status.resident_bytes, status.thaws, status.thaw_nanos
            );
        }
    }

    if !flags.present("--keep") {
        client.drop_tenant(&tenant)?;
    }
    Ok(())
}
