//! End-to-end service tests: a real TCP server, real clients, and a
//! standalone [`StreamMiner`] as the oracle — what a tenant is served over
//! the socket must equal what it would have mined alone in-process.

use std::sync::mpsc;
use std::sync::Arc;

use fsm_core::{
    Algorithm, Exec, MinerConfig, RegistryConfig, SessionRegistry, StreamMiner, WorkerPool,
};
use fsm_fsmd::{serve, FsmdClient, ServerHandle, TenantSpec};
use fsm_storage::BudgetGovernor;
use fsm_types::{Batch, EdgeCatalog, FsmError, MinSup, Transaction};

const VERTICES: u32 = 4;

fn batches() -> Vec<Batch> {
    let t = |raw: &[u32]| Transaction::from_raw(raw.iter().copied());
    vec![
        Batch::from_transactions(0, vec![t(&[2, 3, 5]), t(&[0, 4, 5]), t(&[0, 2, 5])]),
        Batch::from_transactions(1, vec![t(&[0, 2, 3, 5]), t(&[0, 3, 4, 5]), t(&[0, 1, 2])]),
        Batch::from_transactions(2, vec![t(&[0, 2, 5]), t(&[0, 2, 3, 5]), t(&[1, 2, 3])]),
        Batch::from_transactions(3, vec![t(&[1, 4]), t(&[0, 2]), t(&[0, 2, 5])]),
    ]
}

fn spec(tenant: &str, algorithm: u8, backend: u8) -> TenantSpec {
    TenantSpec {
        tenant: tenant.into(),
        algorithm,
        window_batches: 2,
        minsup_absolute: true,
        minsup: 2,
        catalog_kind: 1,
        catalog_n: VERTICES,
        backend,
        cache_budget: 512,
        durable: false,
        delta: false,
    }
}

fn standalone(algorithm: Algorithm, backend: fsm_storage::StorageBackend) -> StreamMiner {
    StreamMiner::new(MinerConfig {
        algorithm,
        window: fsm_stream::WindowConfig::new(2).unwrap(),
        min_support: MinSup::absolute(2),
        backend,
        catalog: Some(EdgeCatalog::complete(VERTICES)),
        ..MinerConfig::default()
    })
    .unwrap()
}

fn start(config: RegistryConfig) -> (Arc<SessionRegistry>, ServerHandle) {
    let registry = Arc::new(SessionRegistry::new(config));
    let handle = serve(Arc::clone(&registry), "127.0.0.1:0").unwrap();
    (registry, handle)
}

/// Three tenants with different algorithms and backends, interleaved over
/// one socket while mines run on another connection, all multiplexed over a
/// two-thread pool under one cache governor: each tenant's served patterns
/// must equal its standalone oracle's.
#[test]
fn served_tenants_match_standalone_miners() {
    let (_registry, handle) = start(RegistryConfig {
        exec: Exec::pool(Arc::new(WorkerPool::new(2))),
        governor: Some(BudgetGovernor::new(4096)),
        ..RegistryConfig::default()
    });
    let tenants = [
        ("alpha", Algorithm::DirectVertical, 0u8),
        ("beta", Algorithm::MultiTree, 1u8),
        ("gamma", Algorithm::SingleTree, 1u8),
    ];
    let mut feeder = FsmdClient::connect(handle.local_addr()).unwrap();
    let mut miner_conn = FsmdClient::connect(handle.local_addr()).unwrap();
    for (tenant, _, backend) in &tenants {
        let algorithm = tenants.iter().find(|t| t.0 == *tenant).unwrap().1;
        let index = Algorithm::ALL.iter().position(|a| *a == algorithm).unwrap();
        feeder
            .create_tenant(&spec(tenant, index as u8, *backend))
            .unwrap();
    }
    assert_eq!(
        miner_conn.list_tenants().unwrap(),
        vec!["alpha".to_string(), "beta".into(), "gamma".into()]
    );
    // Interleave: every batch goes to every tenant, round-robin, with a
    // cross-connection mine between slides to keep the pool busy.
    for batch in &batches() {
        for (tenant, _, _) in &tenants {
            assert!(feeder.ingest_retrying(tenant, batch).unwrap());
        }
        miner_conn.mine("alpha").unwrap();
    }
    for (tenant, algorithm, backend) in tenants {
        let backend = match backend {
            0 => fsm_storage::StorageBackend::Memory,
            _ => fsm_storage::StorageBackend::DiskTemp,
        };
        let mut oracle = standalone(algorithm, backend);
        for batch in &batches() {
            oracle.ingest_batch(batch).unwrap();
        }
        let expected = oracle.mine().unwrap();
        let served = miner_conn.mine(tenant).unwrap();
        assert_eq!(
            served,
            expected.patterns().to_vec(),
            "tenant {tenant} diverged from its standalone run"
        );
    }
    handle.shutdown();
}

/// A full ingest queue surfaces as the dedicated backpressure status, the
/// producer's retry loop recovers, and nothing is lost or reordered.
#[test]
fn backpressure_is_reported_and_recoverable() {
    let (registry, handle) = start(RegistryConfig {
        max_pending_batches: 2,
        ..RegistryConfig::default()
    });
    let mut client = FsmdClient::connect(handle.local_addr()).unwrap();
    client.create_tenant(&spec("solo", 4, 0)).unwrap();
    let stream = batches();
    assert!(client.ingest("solo", &stream[0]).unwrap());

    // Hold the tenant's window hostage so socket ingests fall into the
    // bounded queue, then overflow it.
    let session = registry.get("solo").unwrap();
    let (hold_tx, hold_rx) = mpsc::channel::<()>();
    let (held_tx, held_rx) = mpsc::channel::<()>();
    let hostage = std::thread::spawn(move || {
        session
            .with_miner(move |_| {
                held_tx.send(()).unwrap();
                hold_rx.recv().unwrap();
            })
            .unwrap();
    });
    held_rx.recv().unwrap();
    assert!(!client.ingest("solo", &stream[1]).unwrap()); // queued
    assert!(!client.ingest("solo", &stream[2]).unwrap()); // queue now full
    match client.ingest("solo", &stream[3]) {
        Err(FsmError::Backpressure { tenant }) => assert_eq!(tenant, "solo"),
        other => panic!("expected backpressure, got {other:?}"),
    }
    hold_tx.send(()).unwrap();
    hostage.join().unwrap();
    // The retry loop delivers the rejected batch after the queue drains.
    assert!(client.ingest_retrying("solo", &stream[3]).unwrap());

    let mut oracle = standalone(
        Algorithm::DirectVertical,
        fsm_storage::StorageBackend::Memory,
    );
    for batch in &stream {
        oracle.ingest_batch(batch).unwrap();
    }
    assert_eq!(
        client.mine("solo").unwrap(),
        oracle.mine().unwrap().patterns().to_vec(),
        "the backpressure episode must not lose or reorder batches"
    );
    handle.shutdown();
}

/// Subscriptions deliver the per-slide published result over the socket;
/// the published patterns equal an on-demand mine of the same epoch.
#[test]
fn subscriptions_publish_every_slide_over_the_socket() {
    let (_registry, handle) = start(RegistryConfig::default());
    let mut client = FsmdClient::connect(handle.local_addr()).unwrap();
    client.create_tenant(&spec("sub", 4, 0)).unwrap();
    client.subscribe("sub").unwrap();
    assert_eq!(client.poll("sub").unwrap(), None);
    for batch in &batches() {
        assert!(client.ingest_retrying("sub", batch).unwrap());
        let published = client
            .poll("sub")
            .unwrap()
            .expect("every applied ingest publishes to the live subscription");
        assert_eq!(
            published,
            client.mine("sub").unwrap(),
            "published epoch diverged from an on-demand mine"
        );
        assert_eq!(client.poll("sub").unwrap(), None, "no double delivery");
    }
    handle.shutdown();
}

/// Durable tenants survive a server restart: recover over the socket from
/// the same per-tenant directory and serve the exact pre-restart window.
#[test]
fn durable_tenants_recover_across_server_restarts() {
    let root = fsm_storage::TempDir::new("fsmd-durable").unwrap();
    let config = || RegistryConfig {
        durable_root: Some(root.path().into()),
        ..RegistryConfig::default()
    };
    let stream = batches();
    let mut durable_spec = spec("keeper", 4, 1);
    durable_spec.durable = true;

    let (registry, handle) = start(config());
    let mut client = FsmdClient::connect(handle.local_addr()).unwrap();
    client.create_tenant(&durable_spec).unwrap();
    for batch in &stream[..3] {
        assert!(client.ingest_retrying("keeper", batch).unwrap());
    }
    let before = client.mine("keeper").unwrap();
    drop(client);
    handle.shutdown();
    drop(registry);

    let (_registry, handle) = start(config());
    let mut client = FsmdClient::connect(handle.local_addr()).unwrap();
    assert_eq!(client.list_tenants().unwrap(), Vec::<String>::new());
    client.recover_tenant(&durable_spec).unwrap();
    assert_eq!(
        client.mine("keeper").unwrap(),
        before,
        "recovered window must serve the exact pre-restart patterns"
    );
    // The stream continues where it left off after recovery.
    assert!(client.ingest_retrying("keeper", &stream[3]).unwrap());
    let mut oracle = standalone(
        Algorithm::DirectVertical,
        fsm_storage::StorageBackend::DiskTemp,
    );
    for batch in &stream {
        oracle.ingest_batch(batch).unwrap();
    }
    assert_eq!(
        client.mine("keeper").unwrap(),
        oracle.mine().unwrap().patterns().to_vec()
    );
    handle.shutdown();
}

/// A resident-set cap on the served registry is invisible on the wire:
/// with `max_resident = 1` every cross-tenant request lands on a spilled
/// tenant and thaws it transparently, outputs stay byte-identical to the
/// standalone oracles, and `list` reports lifecycle state, resident bytes
/// and thaw counts per tenant.
#[test]
fn spilled_tenants_are_served_transparently_over_the_socket() {
    let spill_root = fsm_storage::TempDir::new("fsmd-spill").unwrap();
    let (_registry, handle) = start(RegistryConfig {
        max_resident: Some(1),
        spill_root: Some(spill_root.path().into()),
        ..RegistryConfig::default()
    });
    let mut client = FsmdClient::connect(handle.local_addr()).unwrap();
    let tenants = ["cold", "hot", "warm"];
    for tenant in tenants {
        client.create_tenant(&spec(tenant, 4, 0)).unwrap();
    }
    // Round-robin ingest: every visit to the next tenant evicts the one
    // just touched, so every ingest after the first round hits a spilled
    // window and must thaw it first.
    for batch in &batches() {
        for tenant in tenants {
            assert!(client.ingest_retrying(tenant, batch).unwrap());
        }
    }
    let statuses = client.list_tenants_detailed().unwrap();
    assert_eq!(
        statuses
            .iter()
            .map(|s| s.tenant.as_str())
            .collect::<Vec<_>>(),
        vec!["cold", "hot", "warm"]
    );
    let resident = statuses
        .iter()
        .filter(|s| s.state != fsm_core::LifecycleState::Spilled)
        .count();
    assert!(
        resident <= 1,
        "max_resident = 1 must leave at most one tenant resident, \
         got states {:?}",
        statuses
            .iter()
            .map(|s| (s.tenant.clone(), s.state))
            .collect::<Vec<_>>()
    );
    assert!(
        statuses.iter().all(|s| s.thaws > 0),
        "round-robin over a cap of 1 must have thawed every tenant"
    );
    assert!(
        statuses
            .iter()
            .filter(|s| s.state == fsm_core::LifecycleState::Spilled)
            .all(|s| s.resident_bytes == 0),
        "a spilled tenant holds no resident window bytes"
    );
    // Transparency: mines against mostly-spilled tenants serve exactly
    // what a standalone run of the same stream would.
    let mut oracle = standalone(
        Algorithm::DirectVertical,
        fsm_storage::StorageBackend::Memory,
    );
    for batch in &batches() {
        oracle.ingest_batch(batch).unwrap();
    }
    let expected = oracle.mine().unwrap();
    for tenant in tenants {
        assert_eq!(
            client.mine(tenant).unwrap(),
            expected.patterns().to_vec(),
            "tenant {tenant} diverged after spill/thaw cycles"
        );
    }
    handle.shutdown();
}

/// Protocol-level failures are reported as error responses, not hangups:
/// unknown tenants, duplicate creates, malformed opcodes and polls without
/// a subscription all leave the connection serving.
#[test]
fn errors_are_responses_not_hangups() {
    let (_registry, handle) = start(RegistryConfig::default());
    let mut client = FsmdClient::connect(handle.local_addr()).unwrap();
    let err = client.mine("ghost").unwrap_err().to_string();
    assert!(err.contains("unknown tenant"), "got: {err}");
    client.create_tenant(&spec("dup", 4, 0)).unwrap();
    let err = client
        .create_tenant(&spec("dup", 4, 0))
        .unwrap_err()
        .to_string();
    assert!(err.contains("already exists"), "got: {err}");
    let err = client.poll("dup").unwrap_err().to_string();
    assert!(err.contains("not subscribed"), "got: {err}");
    let err = client
        .create_tenant(&spec("badalgo", 9, 0))
        .unwrap_err()
        .to_string();
    assert!(err.contains("algorithm index"), "got: {err}");
    let err = client
        .create_tenant(&spec("bad tenant", 4, 0))
        .unwrap_err()
        .to_string();
    assert!(err.contains("tenant id"), "got: {err}");
    // The connection is still alive and serving after all of the above.
    client.ping().unwrap();
    assert_eq!(client.list_tenants().unwrap(), vec!["dup".to_string()]);
    handle.shutdown();
}
