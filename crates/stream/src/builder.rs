//! Grouping a flat stream of transactions into fixed-size batches.

use fsm_types::{Batch, BatchId, Transaction};

/// Accumulates transactions and emits a [`Batch`] every `batch_size`
/// transactions, assigning consecutive batch identifiers.
///
/// The paper's evaluation sets the batch size to 6 000 records; the running
/// example uses batches of three graphs.
#[derive(Debug, Clone)]
pub struct BatchBuilder {
    batch_size: usize,
    next_id: BatchId,
    pending: Vec<Transaction>,
}

impl BatchBuilder {
    /// Creates a builder emitting batches of `batch_size` transactions.
    ///
    /// A `batch_size` of zero is treated as one so the builder always makes
    /// progress.
    pub fn new(batch_size: usize) -> Self {
        Self {
            batch_size: batch_size.max(1),
            next_id: 0,
            pending: Vec::new(),
        }
    }

    /// Creates a builder that resumes an interrupted stream: the first
    /// emitted batch carries `next_id`.
    ///
    /// Batches are fixed-size, so a resumed run that replays the same
    /// transaction stream (skipping the first `next_id * batch_size`
    /// transactions) reproduces the exact batch boundaries of the original —
    /// which is what crash recovery needs to continue where the WAL left off.
    pub fn resume_from(batch_size: usize, next_id: BatchId) -> Self {
        Self {
            next_id,
            ..Self::new(batch_size)
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Identifier that the next emitted batch will carry.
    pub fn next_batch_id(&self) -> BatchId {
        self.next_id
    }

    /// Adds a transaction; returns a full batch when one completes.
    pub fn push(&mut self, transaction: Transaction) -> Option<Batch> {
        self.pending.push(transaction);
        if self.pending.len() == self.batch_size {
            Some(self.emit())
        } else {
            None
        }
    }

    /// Adds many transactions, returning every batch completed along the way.
    pub fn extend<I>(&mut self, transactions: I) -> Vec<Batch>
    where
        I: IntoIterator<Item = Transaction>,
    {
        let mut out = Vec::new();
        for t in transactions {
            if let Some(batch) = self.push(t) {
                out.push(batch);
            }
        }
        out
    }

    /// Emits whatever is pending as a final (possibly short) batch, or `None`
    /// if nothing is pending.
    pub fn flush(&mut self) -> Option<Batch> {
        if self.pending.is_empty() {
            None
        } else {
            Some(self.emit())
        }
    }

    /// Number of transactions waiting for the current batch to fill.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    fn emit(&mut self) -> Batch {
        let id = self.next_id;
        self.next_id += 1;
        Batch::from_transactions(id, std::mem::take(&mut self.pending))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tx(n: u32) -> Transaction {
        Transaction::from_raw([n])
    }

    #[test]
    fn batches_fill_to_configured_size() {
        let mut builder = BatchBuilder::new(3);
        assert!(builder.push(tx(0)).is_none());
        assert!(builder.push(tx(1)).is_none());
        let batch = builder.push(tx(2)).expect("third push completes the batch");
        assert_eq!(batch.id, 0);
        assert_eq!(batch.len(), 3);
        assert_eq!(builder.pending_len(), 0);
        assert_eq!(builder.next_batch_id(), 1);
    }

    #[test]
    fn extend_emits_multiple_batches() {
        let mut builder = BatchBuilder::new(2);
        let batches = builder.extend((0..5).map(tx));
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].id, 0);
        assert_eq!(batches[1].id, 1);
        assert_eq!(builder.pending_len(), 1);
        let last = builder.flush().unwrap();
        assert_eq!(last.id, 2);
        assert_eq!(last.len(), 1);
        assert!(builder.flush().is_none());
    }

    #[test]
    fn zero_batch_size_is_clamped_to_one() {
        let mut builder = BatchBuilder::new(0);
        assert_eq!(builder.batch_size(), 1);
        assert!(builder.push(tx(0)).is_some());
    }
}
