//! Sources of batches: how a graph stream reaches the mining pipeline.

use std::collections::VecDeque;

use fsm_types::{Batch, EdgeCatalog, GraphSnapshot, Result};

use crate::builder::BatchBuilder;

/// Anything that can produce the next batch of the stream.
///
/// Sources are pull-based: the caller (typically the `StreamMiner` facade or
/// an experiment harness) asks for one batch at a time, mirroring how the
/// paper "delays" mining until it is requested while batches keep flowing in.
pub trait GraphStreamSource {
    /// Produces the next batch, or `Ok(None)` when the stream is exhausted.
    fn next_batch(&mut self) -> Result<Option<Batch>>;
}

/// A source over a pre-materialised list of batches.
#[derive(Debug, Clone, Default)]
pub struct VecSource {
    batches: VecDeque<Batch>,
}

impl VecSource {
    /// Creates a source that will yield `batches` in order.
    pub fn new(batches: Vec<Batch>) -> Self {
        Self {
            batches: batches.into(),
        }
    }

    /// Number of batches not yet consumed.
    pub fn remaining(&self) -> usize {
        self.batches.len()
    }
}

impl GraphStreamSource for VecSource {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        Ok(self.batches.pop_front())
    }
}

/// A source that converts raw [`GraphSnapshot`]s into edge transactions using
/// an [`EdgeCatalog`], grouping them into fixed-size batches.
///
/// This is the path linked-data and generator output takes: snapshots arrive
/// as vertex pairs, the catalog interns each pair to its canonical edge
/// symbol, and a [`BatchBuilder`] groups the resulting transactions.
#[derive(Debug, Clone)]
pub struct SnapshotSource {
    snapshots: VecDeque<GraphSnapshot>,
    catalog: EdgeCatalog,
    builder: BatchBuilder,
    done: bool,
}

impl SnapshotSource {
    /// Creates a source over `snapshots` with a fresh catalog.
    pub fn new(snapshots: Vec<GraphSnapshot>, batch_size: usize) -> Self {
        Self::with_catalog(snapshots, batch_size, EdgeCatalog::new())
    }

    /// Creates a source over `snapshots` with a pre-populated catalog (fixed
    /// edge vocabulary).
    pub fn with_catalog(
        snapshots: Vec<GraphSnapshot>,
        batch_size: usize,
        catalog: EdgeCatalog,
    ) -> Self {
        Self {
            snapshots: snapshots.into(),
            catalog,
            builder: BatchBuilder::new(batch_size),
            done: false,
        }
    }

    /// The catalog as populated so far (grows as snapshots are consumed).
    pub fn catalog(&self) -> &EdgeCatalog {
        &self.catalog
    }
}

impl GraphStreamSource for SnapshotSource {
    fn next_batch(&mut self) -> Result<Option<Batch>> {
        while let Some(snapshot) = self.snapshots.pop_front() {
            let transaction = snapshot.intern_into(&mut self.catalog);
            if let Some(batch) = self.builder.push(transaction) {
                return Ok(Some(batch));
            }
        }
        if self.done {
            return Ok(None);
        }
        self.done = true;
        Ok(self.builder.flush())
    }
}

/// Iterator adapter over any source, stopping at the first error.
pub struct BatchIter<S> {
    source: S,
    failed: bool,
}

impl<S: GraphStreamSource> BatchIter<S> {
    /// Wraps a source into an iterator of batches.
    pub fn new(source: S) -> Self {
        Self {
            source,
            failed: false,
        }
    }
}

impl<S: GraphStreamSource> Iterator for BatchIter<S> {
    type Item = Result<Batch>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.source.next_batch() {
            Ok(Some(batch)) => Some(Ok(batch)),
            Ok(None) => None,
            Err(err) => {
                self.failed = true;
                Some(Err(err))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_types::Transaction;

    #[test]
    fn vec_source_yields_batches_in_order() {
        let batches = vec![
            Batch::from_transactions(0, vec![Transaction::from_raw([0])]),
            Batch::from_transactions(1, vec![Transaction::from_raw([1])]),
        ];
        let mut source = VecSource::new(batches);
        assert_eq!(source.remaining(), 2);
        assert_eq!(source.next_batch().unwrap().unwrap().id, 0);
        assert_eq!(source.next_batch().unwrap().unwrap().id, 1);
        assert!(source.next_batch().unwrap().is_none());
    }

    #[test]
    fn snapshot_source_interns_and_batches() {
        // The first two batches of the paper's running example.
        let snapshots: Vec<GraphSnapshot> = vec![
            GraphSnapshot::from_pairs([(1, 4), (2, 3), (3, 4)]),
            GraphSnapshot::from_pairs([(1, 2), (2, 4), (3, 4)]),
            GraphSnapshot::from_pairs([(1, 2), (1, 4), (3, 4)]),
            GraphSnapshot::from_pairs([(1, 2), (1, 4), (2, 3), (3, 4)]),
        ];
        let catalog = EdgeCatalog::complete(4);
        let mut source = SnapshotSource::with_catalog(snapshots, 3, catalog);
        let first = source.next_batch().unwrap().unwrap();
        assert_eq!(first.len(), 3);
        assert_eq!(first.transactions()[0].to_string(), "{c,d,f}");
        assert_eq!(first.transactions()[1].to_string(), "{a,e,f}");
        let second = source.next_batch().unwrap().unwrap();
        assert_eq!(second.len(), 1, "flush emits the final short batch");
        assert!(source.next_batch().unwrap().is_none());
    }

    #[test]
    fn snapshot_source_grows_catalog_when_not_preseeded() {
        let snapshots = vec![GraphSnapshot::from_pairs([(1, 2), (5, 9)])];
        let mut source = SnapshotSource::new(snapshots, 1);
        let batch = source.next_batch().unwrap().unwrap();
        assert_eq!(batch.transactions()[0].len(), 2);
        assert_eq!(source.catalog().num_edges(), 2);
    }

    #[test]
    fn batch_iter_collects_everything() {
        let batches = vec![
            Batch::from_transactions(0, vec![Transaction::from_raw([0])]),
            Batch::from_transactions(1, vec![Transaction::from_raw([1])]),
        ];
        let collected: Vec<Batch> = BatchIter::new(VecSource::new(batches))
            .collect::<Result<Vec<_>>>()
            .unwrap();
        assert_eq!(collected.len(), 2);
    }
}
