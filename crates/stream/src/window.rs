//! Sliding-window bookkeeping.

use std::collections::VecDeque;

use fsm_types::{Batch, BatchId, FsmError, Result, Transaction};

/// Configuration of the sliding window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowConfig {
    /// Number of batches kept in the window (`w` in the paper).
    pub window_batches: usize,
}

impl WindowConfig {
    /// Creates a configuration, validating that the window holds at least one
    /// batch.
    pub fn new(window_batches: usize) -> Result<Self> {
        if window_batches == 0 {
            return Err(FsmError::config("window must hold at least one batch"));
        }
        Ok(Self { window_batches })
    }
}

impl Default for WindowConfig {
    fn default() -> Self {
        Self { window_batches: 5 }
    }
}

/// What happened when a batch was pushed into the window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlideOutcome {
    /// Identifier of the batch that entered.
    pub entered: BatchId,
    /// Number of transactions the entering batch contributed.
    pub entered_transactions: usize,
    /// If the window was full, the batch that left and how many transactions
    /// (matrix columns) it takes with it.
    pub evicted: Option<(BatchId, usize)>,
}

/// Tracks which batches are currently inside the window and where the batch
/// boundaries fall, without retaining the transactions themselves.
///
/// This is the "boundary information" every capture structure keeps: the
/// DSMatrix keeps exactly `w` global boundary values (one per batch) so that a
/// window slide knows how many leading columns to discard.
#[derive(Debug, Clone, Default)]
pub struct SlidingWindow {
    config: WindowConfig,
    /// (batch id, number of transactions) for each batch in the window,
    /// oldest first.
    batches: VecDeque<(BatchId, usize)>,
}

impl SlidingWindow {
    /// Creates an empty window.
    pub fn new(config: WindowConfig) -> Self {
        Self {
            config,
            batches: VecDeque::with_capacity(config.window_batches),
        }
    }

    /// The window configuration.
    pub fn config(&self) -> WindowConfig {
        self.config
    }

    /// Registers the arrival of a batch with `transactions` transactions,
    /// evicting the oldest batch if the window is already full.
    pub fn push(&mut self, id: BatchId, transactions: usize) -> SlideOutcome {
        let evicted = if self.batches.len() == self.config.window_batches {
            self.batches.pop_front()
        } else {
            None
        };
        self.batches.push_back((id, transactions));
        SlideOutcome {
            entered: id,
            entered_transactions: transactions,
            evicted,
        }
    }

    /// Number of batches currently in the window.
    pub fn num_batches(&self) -> usize {
        self.batches.len()
    }

    /// Returns `true` if the window holds no batches yet.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Returns `true` if the window has reached its configured capacity.
    pub fn is_full(&self) -> bool {
        self.batches.len() == self.config.window_batches
    }

    /// Total number of transactions across all batches in the window (the
    /// number of DSMatrix columns, `|T|`).
    pub fn total_transactions(&self) -> usize {
        self.batches.iter().map(|(_, n)| *n).sum()
    }

    /// Cumulative batch boundaries, exactly as the DSMatrix records them:
    /// `boundaries()[i]` is the number of columns up to and including batch
    /// `i` of the window.  Example 1 reports "Boundaries: Cols 3 & 6".
    pub fn boundaries(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.batches.len());
        let mut acc = 0;
        for (_, n) in &self.batches {
            acc += n;
            out.push(acc);
        }
        out
    }

    /// Identifiers of the batches in the window, oldest first.
    pub fn batch_ids(&self) -> Vec<BatchId> {
        self.batches.iter().map(|(id, _)| *id).collect()
    }

    /// Identifier of the oldest batch currently in the window.
    pub fn oldest(&self) -> Option<BatchId> {
        self.batches.front().map(|(id, _)| *id)
    }

    /// Identifier of the newest batch currently in the window.
    pub fn newest(&self) -> Option<BatchId> {
        self.batches.back().map(|(id, _)| *id)
    }
}

/// A reference window that retains the transactions of the last `w` batches in
/// memory.
///
/// The exact-mining oracle, the DSTree and the DSTable all need the actual
/// window contents; the DSMatrix does not (it keeps them on disk), which is
/// the whole point of the paper — but having one canonical in-memory view
/// keeps the baselines honest and the tests simple.
#[derive(Debug, Clone, Default)]
pub struct TransactionWindow {
    window: SlidingWindow,
    contents: VecDeque<Batch>,
}

impl TransactionWindow {
    /// Creates an empty transaction-retaining window.
    pub fn new(config: WindowConfig) -> Self {
        Self {
            window: SlidingWindow::new(config),
            contents: VecDeque::with_capacity(config.window_batches),
        }
    }

    /// Pushes a batch, evicting the oldest if the window is full.
    pub fn push(&mut self, batch: Batch) -> SlideOutcome {
        let outcome = self.window.push(batch.id, batch.len());
        if outcome.evicted.is_some() {
            self.contents.pop_front();
        }
        self.contents.push_back(batch);
        outcome
    }

    /// The boundary bookkeeping of the underlying window.
    pub fn window(&self) -> &SlidingWindow {
        &self.window
    }

    /// Iterates over every transaction currently in the window, oldest batch
    /// first.
    pub fn transactions(&self) -> impl Iterator<Item = &Transaction> {
        self.contents.iter().flat_map(|b| b.transactions().iter())
    }

    /// Total number of transactions in the window.
    pub fn total_transactions(&self) -> usize {
        self.window.total_transactions()
    }

    /// Batches currently retained, oldest first.
    pub fn batches(&self) -> impl Iterator<Item = &Batch> {
        self.contents.iter()
    }

    /// Returns `true` if no batch has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.contents.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_types::Transaction;

    fn batch(id: BatchId, sizes: &[usize]) -> Batch {
        Batch::from_transactions(
            id,
            sizes
                .iter()
                .map(|n| Transaction::from_raw(0..*n as u32))
                .collect(),
        )
    }

    #[test]
    fn config_rejects_zero_window() {
        assert!(WindowConfig::new(0).is_err());
        assert_eq!(WindowConfig::new(5).unwrap().window_batches, 5);
        assert_eq!(WindowConfig::default().window_batches, 5);
    }

    #[test]
    fn boundaries_match_paper_example_1() {
        // Window of w = 2 batches, three transactions each.
        let mut window = SlidingWindow::new(WindowConfig::new(2).unwrap());
        window.push(0, 3);
        window.push(1, 3);
        assert_eq!(window.boundaries(), vec![3, 6]);
        assert_eq!(window.total_transactions(), 6);
        assert!(window.is_full());

        // Batch B3 arrives: B1 is evicted, boundaries stay at 3 & 6.
        let outcome = window.push(2, 3);
        assert_eq!(outcome.evicted, Some((0, 3)));
        assert_eq!(window.boundaries(), vec![3, 6]);
        assert_eq!(window.batch_ids(), vec![1, 2]);
        assert_eq!(window.oldest(), Some(1));
        assert_eq!(window.newest(), Some(2));
    }

    #[test]
    fn window_grows_until_full_without_evicting() {
        let mut window = SlidingWindow::new(WindowConfig::new(3).unwrap());
        assert!(window.is_empty());
        for id in 0..3u64 {
            let outcome = window.push(id, 2);
            assert!(outcome.evicted.is_none());
        }
        assert!(window.is_full());
        let outcome = window.push(3, 2);
        assert_eq!(outcome.evicted, Some((0, 2)));
        assert_eq!(window.num_batches(), 3);
    }

    #[test]
    fn uneven_batches_produce_uneven_boundaries() {
        let mut window = SlidingWindow::new(WindowConfig::new(3).unwrap());
        window.push(0, 2);
        window.push(1, 5);
        window.push(2, 1);
        assert_eq!(window.boundaries(), vec![2, 7, 8]);
        assert_eq!(window.total_transactions(), 8);
    }

    #[test]
    fn transaction_window_retains_only_window_contents() {
        let mut tw = TransactionWindow::new(WindowConfig::new(2).unwrap());
        assert!(tw.is_empty());
        tw.push(batch(0, &[1, 2]));
        tw.push(batch(1, &[3]));
        tw.push(batch(2, &[2, 2]));
        assert_eq!(tw.total_transactions(), 3);
        assert_eq!(tw.window().batch_ids(), vec![1, 2]);
        assert_eq!(tw.transactions().count(), 3);
        assert_eq!(tw.batches().count(), 2);
        // The evicted batch's transactions are gone.
        let max_len = tw.transactions().map(|t| t.len()).max().unwrap();
        assert_eq!(max_len, 3);
    }

    #[test]
    fn slide_outcome_reports_entering_batch() {
        let mut window = SlidingWindow::new(WindowConfig::new(1).unwrap());
        let outcome = window.push(9, 7);
        assert_eq!(outcome.entered, 9);
        assert_eq!(outcome.entered_transactions, 7);
        assert!(outcome.evicted.is_none());
        let outcome = window.push(10, 4);
        assert_eq!(outcome.evicted, Some((9, 7)));
    }
}
