//! The graph stream model: batch construction, sliding windows and stream
//! sources.
//!
//! The paper processes a continuous, unbounded stream of graph transactions in
//! *batches* and mines over a *sliding window* of the most recent `w` batches
//! (6 000-record batches and `w = 5` in the evaluation; 3-graph batches and
//! `w = 2` in the running example).  This crate provides:
//!
//! * [`BatchBuilder`] — groups incoming transactions into fixed-size batches;
//! * [`SlidingWindow`] — tracks which batches are inside the window and where
//!   the batch boundaries fall, the bookkeeping every capture structure needs
//!   when the window slides;
//! * [`TransactionWindow`] — a reference window that actually retains the
//!   transactions (used by the exactness oracle and the DSTree/DSTable
//!   baselines);
//! * [`GraphStreamSource`] and adapters — how batches are produced, whether
//!   from in-memory vectors, graph snapshots, or generators downstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod source;
pub mod stats;
pub mod window;

pub use builder::BatchBuilder;
pub use source::{BatchIter, GraphStreamSource, SnapshotSource, VecSource};
pub use stats::StreamStats;
pub use window::{SlideOutcome, SlidingWindow, TransactionWindow, WindowConfig};
