//! Running statistics over a graph stream.

use std::collections::BTreeSet;
use std::fmt;

use fsm_types::{Batch, EdgeId};

/// Aggregate statistics of the batches observed so far.
///
/// The experiment harness uses these to characterise generated workloads the
/// same way the paper characterises connect4 ("67,557 records with an average
/// transaction length of 43 items, and a domain of 130 items") and to verify
/// that synthetic substitutes match the intended density profile.
#[derive(Debug, Clone, Default)]
pub struct StreamStats {
    batches: usize,
    transactions: usize,
    edge_occurrences: usize,
    max_transaction_len: usize,
    distinct_edges: BTreeSet<EdgeId>,
}

impl StreamStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one batch into the statistics.
    pub fn observe_batch(&mut self, batch: &Batch) {
        self.batches += 1;
        self.transactions += batch.len();
        for t in batch.iter() {
            self.edge_occurrences += t.len();
            self.max_transaction_len = self.max_transaction_len.max(t.len());
            self.distinct_edges.extend(t.iter());
        }
    }

    /// Convenience: folds every batch of a slice.
    pub fn observe_all<'a, I>(&mut self, batches: I)
    where
        I: IntoIterator<Item = &'a Batch>,
    {
        for b in batches {
            self.observe_batch(b);
        }
    }

    /// Number of batches observed.
    pub fn batches(&self) -> usize {
        self.batches
    }

    /// Number of transactions observed.
    pub fn transactions(&self) -> usize {
        self.transactions
    }

    /// Number of distinct edge symbols observed (the domain size `m`).
    pub fn distinct_edges(&self) -> usize {
        self.distinct_edges.len()
    }

    /// Mean transaction length.
    pub fn avg_transaction_len(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.edge_occurrences as f64 / self.transactions as f64
        }
    }

    /// Longest transaction seen.
    pub fn max_transaction_len(&self) -> usize {
        self.max_transaction_len
    }

    /// Density: mean fraction of the domain present in a transaction.
    ///
    /// Dense streams (connect4-like) approach 0.3+, sparse ones stay below
    /// a few percent; the paper's DSTable-vs-DSMatrix argument hinges on this.
    pub fn density(&self) -> f64 {
        if self.distinct_edges.is_empty() {
            0.0
        } else {
            self.avg_transaction_len() / self.distinct_edges.len() as f64
        }
    }
}

impl fmt::Display for StreamStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} batches, {} transactions, {} distinct edges, avg len {:.2}, density {:.3}",
            self.batches,
            self.transactions,
            self.distinct_edges(),
            self.avg_transaction_len(),
            self.density()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_types::Transaction;

    #[test]
    fn statistics_aggregate_across_batches() {
        let b0 = Batch::from_transactions(
            0,
            vec![
                Transaction::from_raw([0, 1, 2]),
                Transaction::from_raw([0, 3]),
            ],
        );
        let b1 = Batch::from_transactions(1, vec![Transaction::from_raw([4, 5, 6, 7])]);
        let mut stats = StreamStats::new();
        stats.observe_all([&b0, &b1]);
        assert_eq!(stats.batches(), 2);
        assert_eq!(stats.transactions(), 3);
        assert_eq!(stats.distinct_edges(), 8);
        assert_eq!(stats.max_transaction_len(), 4);
        assert!((stats.avg_transaction_len() - 3.0).abs() < 1e-9);
        assert!((stats.density() - 3.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn empty_statistics_are_well_defined() {
        let stats = StreamStats::new();
        assert_eq!(stats.avg_transaction_len(), 0.0);
        assert_eq!(stats.density(), 0.0);
        assert_eq!(stats.transactions(), 0);
    }

    #[test]
    fn display_mentions_key_figures() {
        let mut stats = StreamStats::new();
        stats.observe_batch(&Batch::from_transactions(
            0,
            vec![Transaction::from_raw([0, 1])],
        ));
        let text = stats.to_string();
        assert!(text.contains("1 batches"));
        assert!(text.contains("2 distinct edges"));
    }
}
