//! Ablation A2: disk-backed versus memory-resident DSMatrix.
//!
//! The paper keeps the DSMatrix on disk to bound memory; this ablation
//! quantifies what that costs in capture and mining time by running the same
//! stream and the same (direct vertical) mining over both backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsm_bench::Workload;
use fsm_core::{Algorithm, StreamMinerBuilder};
use fsm_storage::StorageBackend;
use fsm_types::MinSup;

fn backends(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsmatrix_backend");
    group.sample_size(10);
    let workload = Workload::graph_model(1, 333);

    for (label, backend) in [
        ("memory", StorageBackend::Memory),
        ("disk", StorageBackend::DiskTemp),
    ] {
        group.bench_with_input(
            BenchmarkId::new("capture_and_mine", label),
            &backend,
            |b, backend| {
                b.iter(|| {
                    let mut miner = StreamMinerBuilder::new()
                        .algorithm(Algorithm::DirectVertical)
                        .window_batches(5)
                        .min_support(MinSup::relative(0.03))
                        .max_pattern_len(4)
                        .backend(backend.clone())
                        .catalog(workload.catalog.clone())
                        .build()
                        .expect("miner");
                    for batch in &workload.batches {
                        miner.ingest_batch(batch).expect("ingest");
                    }
                    std::hint::black_box(miner.mine().expect("mine").len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, backends);
criterion_main!(benches);
