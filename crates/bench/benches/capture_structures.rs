//! Capture-structure comparison: DSTree vs DSTable vs DSMatrix.
//!
//! Supports the paper's second experiment from the capture side: the cost of
//! ingesting one batch (including the window slide) for each of the three
//! structures, plus the mining cost over each structure with the same
//! FP-growth strategy.  The DSMatrix is expected to have the cheapest slide on
//! dense data because it only drops a prefix of every bit row.
//!
//! A second group benchmarks the DSMatrix *read* surface: constructing the
//! zero-copy `WindowView` versus materialising the eager `RowSnapshot` over
//! the same captured window (the view should cost nanoseconds regardless of
//! window size; the snapshot scales with it).
//!
//! A third group benchmarks the *disk* read surface: assembling a view over
//! a disk-backed window with the chunk cache disabled (budget 0 — every call
//! fetches, decodes and flat-assembles all pages again) versus an unlimited
//! budget (after the first call, the view borrows rows straight from pinned
//! decoded chunks — no page fetch and no flat-row assembly at all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsm_bench::Workload;
use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
use fsm_dstable::{DsTable, DsTableConfig};
use fsm_dstree::{DsTree, DsTreeConfig};
use fsm_storage::StorageBackend;
use fsm_stream::WindowConfig;

fn capture(c: &mut Criterion) {
    let mut group = c.benchmark_group("capture_one_stream");
    group.sample_size(10);

    for workload in [Workload::graph_model(1, 11), Workload::dense(1, 12)] {
        let window = WindowConfig::new(5).unwrap();

        group.bench_with_input(BenchmarkId::new("dstree", &workload.name), &(), |b, ()| {
            b.iter(|| {
                let mut tree = DsTree::new(DsTreeConfig { window });
                for batch in &workload.batches {
                    tree.ingest_batch(batch).unwrap();
                }
                std::hint::black_box(tree.num_nodes())
            })
        });

        group.bench_with_input(BenchmarkId::new("dstable", &workload.name), &(), |b, ()| {
            b.iter(|| {
                let mut table = DsTable::new(DsTableConfig {
                    window,
                    backend: StorageBackend::Memory,
                    expected_edges: workload.catalog.num_edges(),
                })
                .unwrap();
                for batch in &workload.batches {
                    table.ingest_batch(batch).unwrap();
                }
                std::hint::black_box(table.num_transactions())
            })
        });

        group.bench_with_input(
            BenchmarkId::new("dsmatrix", &workload.name),
            &(),
            |b, ()| {
                b.iter(|| {
                    let mut matrix = DsMatrix::new(DsMatrixConfig::new(
                        window,
                        StorageBackend::Memory,
                        workload.catalog.num_edges(),
                    ))
                    .unwrap();
                    for batch in &workload.batches {
                        matrix.ingest_batch(batch).unwrap();
                    }
                    std::hint::black_box(matrix.num_transactions())
                })
            },
        );
    }
    group.finish();
}

fn read_surface(c: &mut Criterion) {
    let mut group = c.benchmark_group("window_read_surface");
    group.sample_size(10);

    for workload in [Workload::graph_model(1, 11), Workload::dense(1, 12)] {
        let mut matrix = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(5).unwrap(),
            StorageBackend::Memory,
            workload.catalog.num_edges(),
        ))
        .unwrap();
        for batch in &workload.batches {
            matrix.ingest_batch(batch).unwrap();
        }

        group.bench_with_input(
            BenchmarkId::new("view_zero_copy", &workload.name),
            &(),
            |b, ()| {
                b.iter(|| {
                    let view = matrix.view().unwrap();
                    std::hint::black_box(view.num_transactions())
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("snapshot_eager", &workload.name),
            &(),
            |b, ()| {
                b.iter(|| {
                    let snapshot = matrix.snapshot().unwrap();
                    std::hint::black_box(snapshot.num_transactions())
                })
            },
        );
    }
    group.finish();
}

fn disk_read_surface(c: &mut Criterion) {
    let mut group = c.benchmark_group("disk_read_surface");
    group.sample_size(10);

    for workload in [Workload::graph_model(1, 11), Workload::dense(1, 12)] {
        for (label, budget) in [
            ("view_eager_budget0", 0usize),
            ("view_budgeted", usize::MAX),
        ] {
            let mut matrix = DsMatrix::new(
                DsMatrixConfig::new(
                    WindowConfig::new(5).unwrap(),
                    StorageBackend::DiskTemp,
                    workload.catalog.num_edges(),
                )
                .with_cache_budget(budget),
            )
            .unwrap();
            for batch in &workload.batches {
                matrix.ingest_batch(batch).unwrap();
            }

            group.bench_with_input(BenchmarkId::new(label, &workload.name), &(), |b, ()| {
                b.iter(|| {
                    let view = matrix.view().unwrap();
                    std::hint::black_box(view.num_transactions())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, capture, read_surface, disk_read_surface);
criterion_main!(benches);
