//! Figure 2 — runtimes of the two vertical mining algorithms.
//!
//! The paper's Figure 2 plots the fourth algorithm (vertical mining with the
//! post-processing step, §3.4 + §3.5) against the fifth (direct vertical
//! mining, §4).  This bench measures the mining step of both algorithms over
//! the same captured window, across the three standard workloads and a small
//! minsup sweep; the expectation from the paper is that the direct algorithm
//! is consistently faster because it never spends intersections on
//! collections that would be pruned afterwards.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsm_bench::Workload;
use fsm_core::{Algorithm, StreamMinerBuilder};
use fsm_storage::StorageBackend;
use fsm_types::MinSup;

fn prepared_miner(
    workload: &Workload,
    algorithm: Algorithm,
    minsup: MinSup,
) -> fsm_core::StreamMiner {
    let mut miner = StreamMinerBuilder::new()
        .algorithm(algorithm)
        .window_batches(5)
        .min_support(minsup)
        .max_pattern_len(4)
        .backend(StorageBackend::Memory)
        .catalog(workload.catalog.clone())
        .build()
        .expect("miner");
    for batch in &workload.batches {
        miner.ingest_batch(batch).expect("ingest");
    }
    miner
}

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_vertical_vs_direct");
    group.sample_size(15);

    for workload in Workload::standard_suite(1) {
        let minsup = match workload.kind {
            fsm_bench::WorkloadKind::Dense => MinSup::relative(0.15),
            _ => MinSup::relative(0.03),
        };
        for algorithm in [Algorithm::Vertical, Algorithm::DirectVertical] {
            let mut miner = prepared_miner(&workload, algorithm, minsup);
            group.bench_with_input(
                BenchmarkId::new(algorithm.key(), &workload.name),
                &(),
                |b, ()| b.iter(|| std::hint::black_box(miner.mine().expect("mine"))),
            );
        }
    }
    group.finish();
}

fn fig2_minsup_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_minsup_sweep");
    group.sample_size(15);
    let workload = Workload::graph_model(1, 909);

    for fraction in [0.02f64, 0.05, 0.10] {
        for algorithm in [Algorithm::Vertical, Algorithm::DirectVertical] {
            let mut miner = prepared_miner(&workload, algorithm, MinSup::relative(fraction));
            group.bench_with_input(
                BenchmarkId::new(algorithm.key(), format!("minsup={:.0}%", fraction * 100.0)),
                &(),
                |b, ()| b.iter(|| std::hint::black_box(miner.mine().expect("mine"))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig2, fig2_minsup_sweep);
criterion_main!(benches);
