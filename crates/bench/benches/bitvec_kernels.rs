//! Micro-benchmarks of the BitVec hot-path kernels.
//!
//! The vertical miners spend almost their entire runtime in three kernels:
//! intersect-and-count (candidate screening), intersect-into-buffer
//! (materialising a frequent candidate's transaction set) and prefix dropping
//! (the window slide).  This bench compares the allocating baselines against
//! the fused / in-place variants the engine uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsm_storage::BitVec;

fn vectors(bits: usize) -> (BitVec, BitVec) {
    let a: BitVec = (0..bits).map(|i| i % 3 == 0).collect();
    let b: BitVec = (0..bits).map(|i| i % 5 != 0).collect();
    (a, b)
}

fn intersection_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec_intersection");
    group.sample_size(30);

    for bits in [512usize, 8 * 1024, 128 * 1024] {
        let (a, b) = vectors(bits);

        // Baseline: materialise a fresh vector, then count.
        group.bench_with_input(BenchmarkId::new("and_alloc", bits), &(), |bench, ()| {
            bench.iter(|| std::hint::black_box(a.and(&b).count_ones()))
        });

        // Fused popcount without materialisation (the infrequent-candidate
        // screen).
        group.bench_with_input(BenchmarkId::new("and_count", bits), &(), |bench, ()| {
            bench.iter(|| std::hint::black_box(a.and_count(&b)))
        });

        // Fused intersect+count into a reused buffer (the frequent-candidate
        // path).
        let mut scratch = BitVec::new();
        group.bench_with_input(BenchmarkId::new("and_into", bits), &(), |bench, ()| {
            bench.iter(|| std::hint::black_box(a.and_into(&b, &mut scratch)))
        });
    }
    group.finish();
}

fn slide_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec_slide");
    group.sample_size(30);

    for bits in [8 * 1024usize, 128 * 1024] {
        let (a, _) = vectors(bits);
        // Drop one batch worth of columns (not word-aligned, the hard case).
        let drop = bits / 7 + 1;
        group.bench_with_input(BenchmarkId::new("drop_prefix", bits), &(), |bench, ()| {
            bench.iter(|| {
                let mut row = a.clone();
                row.drop_prefix(drop);
                std::hint::black_box(row.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, intersection_kernels, slide_kernels);
criterion_main!(benches);
