//! Micro-benchmarks of the BitVec hot-path kernels.
//!
//! The vertical miners spend almost their entire runtime in three kernels:
//! intersect-and-count (candidate screening), intersect-into-buffer
//! (materialising a frequent candidate's transaction set) and prefix dropping
//! (the window slide).  This bench compares the allocating baselines against
//! the fused / in-place variants the engine uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fsm_storage::{BitVec, SegmentedWindowStore, StorageBackend};

fn vectors(bits: usize) -> (BitVec, BitVec) {
    let a: BitVec = (0..bits).map(|i| i % 3 == 0).collect();
    let b: BitVec = (0..bits).map(|i| i % 5 != 0).collect();
    (a, b)
}

fn intersection_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec_intersection");
    group.sample_size(30);

    for bits in [512usize, 8 * 1024, 128 * 1024] {
        let (a, b) = vectors(bits);

        // Baseline: materialise a fresh vector, then count.
        group.bench_with_input(BenchmarkId::new("and_alloc", bits), &(), |bench, ()| {
            bench.iter(|| std::hint::black_box(a.and(&b).count_ones()))
        });

        // Fused popcount without materialisation (the infrequent-candidate
        // screen).
        group.bench_with_input(BenchmarkId::new("and_count", bits), &(), |bench, ()| {
            bench.iter(|| std::hint::black_box(a.and_count(&b)))
        });

        // Fused intersect+count into a reused buffer (the frequent-candidate
        // path).
        let mut scratch = BitVec::new();
        group.bench_with_input(BenchmarkId::new("and_into", bits), &(), |bench, ()| {
            bench.iter(|| std::hint::black_box(a.and_into(&b, &mut scratch)))
        });
    }
    group.finish();
}

/// Chunk-aware kernels: intersecting a flat row against a segmented row
/// without assembling it, versus assembling into a reused buffer first and
/// using the flat kernel.
///
/// This quantifies the trade the engine's defaults are built on: the
/// streaming cursor needs no scratch memory at all, but pays per-word
/// stitching, while splice-into-a-buffer amortises to a plain memcpy + flat
/// AND — which is why the DSMatrix keeps a spliced row *cache* as the miners'
/// read surface and reserves the cursor for cache-less one-off reads.
fn chunked_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec_chunked");
    group.sample_size(30);

    for bits in [8 * 1024usize, 128 * 1024] {
        let (a, b) = vectors(bits);
        // A window of 16 misaligned segments all touching row 0.
        let mut store = SegmentedWindowStore::open(StorageBackend::Memory).unwrap();
        let seg_cols = bits / 16 + 3;
        let mut produced = 0;
        while produced < bits {
            let cols = seg_cols.min(bits - produced);
            let chunk: BitVec = (produced..produced + cols).map(|i| b.get(i)).collect();
            store.push_segment(cols, [(0usize, &chunk)]).unwrap();
            produced += cols;
        }

        group.bench_with_input(
            BenchmarkId::new("and_count_chunked", bits),
            &(),
            |bench, ()| {
                let row = store.chunked_row(0).unwrap();
                bench.iter(|| std::hint::black_box(a.and_count_chunked(&row)))
            },
        );

        group.bench_with_input(
            BenchmarkId::new("assemble_then_and_count", bits),
            &(),
            |bench, ()| {
                let row = store.chunked_row(0).unwrap();
                let mut flat = BitVec::new();
                bench.iter(|| {
                    row.assemble_into(&mut flat);
                    std::hint::black_box(a.and_count(&flat))
                })
            },
        );
    }
    group.finish();
}

fn slide_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitvec_slide");
    group.sample_size(30);

    for bits in [8 * 1024usize, 128 * 1024] {
        let (a, _) = vectors(bits);
        // Drop one batch worth of columns (not word-aligned, the hard case).
        let drop = bits / 7 + 1;
        group.bench_with_input(BenchmarkId::new("drop_prefix", bits), &(), |bench, ()| {
            bench.iter(|| {
                let mut row = a.clone();
                row.drop_prefix(drop);
                std::hint::black_box(row.len())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    intersection_kernels,
    chunked_kernels,
    slide_kernels
);
criterion_main!(benches);
