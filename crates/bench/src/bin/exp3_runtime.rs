//! Experiment E3 (§5, third experiment + Figure 2): time efficiency.
//!
//! Expected ordering (paper): runtime(multi-tree) > runtime(single-tree ≈
//! top-down) > runtime(vertical) > runtime(direct-vertical).  Figure 2 plots
//! the two vertical algorithms against each other; the companion Criterion
//! bench `fig2_vertical` produces the statistically rigorous version of that
//! figure, while this binary prints the full table across all algorithms.

use fsm_bench::report::{markdown_table, millis};
use fsm_bench::{run_algorithm_on, run_algorithm_threaded, run_baselines_on, Workload};
use fsm_core::{Algorithm, MinerSnapshot, StreamMiner, StreamMinerBuilder};
use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
use fsm_storage::{BitVec, StorageBackend};
use fsm_stream::WindowConfig;
use fsm_types::MinSup;

/// Shared experiment setup: every section mines the same workload suite at
/// the same thresholds and window, so the configuration is derived once here
/// instead of being repeated (and risking drift) in every section.
struct Setup {
    /// Sliding-window length in batches.
    window: usize,
    /// Pattern-cardinality cap for the timing tables (sections that need the
    /// enumeration to dominate deepen it locally).
    max_len: Option<usize>,
    /// Timing repeats per measured cell.
    repeats: u32,
    /// Worker threads for the parallel-scaling section.
    threads: usize,
    /// The standard workload suite, each paired with its minsup (dense
    /// streams mine at a higher relative threshold, as in the paper's
    /// experiment setup).
    workloads: Vec<(Workload, MinSup)>,
}

impl Setup {
    fn new(scale: usize, threads: usize) -> Self {
        let workloads = Workload::standard_suite(scale)
            .into_iter()
            .map(|workload| {
                let minsup = match workload.kind {
                    fsm_bench::WorkloadKind::Dense => MinSup::relative(0.15),
                    _ => MinSup::relative(0.03),
                };
                (workload, minsup)
            })
            .collect();
        Self {
            window: 5,
            max_len: Some(4),
            repeats: 3,
            threads,
            workloads,
        }
    }
}

fn main() {
    let mut scale = None;
    let mut threads = 4usize;
    let mut json_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = if arg == "--threads" {
            args.next().and_then(|s| s.parse().ok()).map(|n| {
                // Resolve "all cores" up front so the report names the real
                // worker count.
                threads = if n == 0 {
                    std::thread::available_parallelism()
                        .map(|c| c.get())
                        .unwrap_or(1)
                } else {
                    n
                };
            })
        } else if arg == "--json-out" {
            args.next().map(|path| json_out = Some(path))
        } else if scale.is_none() {
            arg.parse().ok().map(|n| scale = Some(n))
        } else {
            None
        };
        if parsed.is_none() {
            eprintln!("usage: exp3_runtime [SCALE] [--threads N] [--json-out PATH]");
            std::process::exit(2);
        }
    }
    let setup = Setup::new(scale.unwrap_or(1), threads);

    main_table(&setup);
    parallel_scaling(&setup);
    concurrent_ingest_mine(&setup);
    slide_cost(&setup);
    read_amplification(&setup);
    disk_read_amplification(&setup);
    durability(&setup);
    let delta = delta_mining(&setup);
    let kernels = kernel_timings();

    if let Some(path) = json_out {
        let json = render_json(&delta, &kernels);
        std::fs::write(&path, json).expect("write --json-out file");
        println!("wrote delta + kernel numbers to {path}");
    }
}

/// The headline E3 table: all five algorithms plus the DSTree/DSTable
/// baselines on every workload, with the paper's runtime-ordering check.
fn main_table(setup: &Setup) {
    println!(
        "# Experiment E3 — time efficiency (averaged over {} runs)\n",
        setup.repeats
    );

    for (workload, minsup) in &setup.workloads {
        println!("## {} ({})\n", workload.name, workload.stats());
        let mut rows = Vec::new();
        let mut timings = std::collections::BTreeMap::new();

        for algorithm in Algorithm::ALL {
            let mut total_mine = std::time::Duration::ZERO;
            let mut total_capture = std::time::Duration::ZERO;
            let mut patterns = 0;
            for _ in 0..setup.repeats {
                let run = run_algorithm_on(
                    workload,
                    algorithm,
                    setup.window,
                    *minsup,
                    setup.max_len,
                    StorageBackend::DiskTemp,
                )
                .expect("run");
                total_mine += run.mining_time;
                total_capture += run.capture_time;
                patterns = run.patterns;
            }
            let mine_avg = total_mine / setup.repeats;
            timings.insert(algorithm.key().to_string(), mine_avg);
            rows.push(vec![
                algorithm.key().to_string(),
                millis(total_capture / setup.repeats),
                millis(mine_avg),
                patterns.to_string(),
            ]);
        }
        for run_result in
            run_baselines_on(workload, setup.window, *minsup, setup.max_len).expect("baselines")
        {
            rows.push(vec![
                run_result.label.clone(),
                millis(run_result.capture_time),
                millis(run_result.mining_time),
                run_result.patterns.to_string(),
            ]);
        }

        println!(
            "{}",
            markdown_table(
                &[
                    "miner",
                    "capture ms (stream)",
                    "mine ms (window)",
                    "patterns"
                ],
                &rows
            )
        );

        let get = |k: &str| timings.get(k).copied().unwrap_or_default();
        let horizontal_slowest = get("multi-tree");
        let single = get("single-tree").min(get("top-down"));
        let vertical = get("vertical");
        let direct = get("direct-vertical");
        println!(
            "ordering check: multi-tree ({} ms) >= single/top-down ({} ms) >= vertical ({} ms) >= direct ({} ms) : {}\n",
            millis(horizontal_slowest),
            millis(single),
            millis(vertical),
            millis(direct),
            if horizontal_slowest >= single && single >= vertical && vertical >= direct {
                "holds"
            } else {
                "see Criterion bench for the statistically robust comparison"
            }
        );
    }
}

/// Durability section: what WAL-before-apply costs per slide (bytes appended
/// and fsyncs issued), what checkpoints cost in bytes, and how long crash
/// recovery (newest checkpoint + WAL-tail replay) takes as the window grows.
///
/// Every row is measured: the run is "crashed" by dropping the miner without
/// a shutdown checkpoint, recovered with [`StreamMiner::recover`], and the
/// recovered window's patterns are asserted identical to the uninterrupted
/// run's.  The memory backend is asserted to pay nothing — all durability
/// counters stay zero when durability is off.
fn durability(setup: &Setup) {
    println!("# Durability — WAL overhead per slide, recovery time vs window size\n");
    for (workload, minsup) in &setup.workloads {
        let minsup = *minsup;
        println!("## {} ({})\n", workload.name, workload.stats());
        let mut rows = Vec::new();
        for window in [3usize, 5, 10] {
            let dir = fsm_storage::TempDir::new("bench-durable").expect("tempdir");
            let build = |recover: bool| -> StreamMiner {
                let mut builder = StreamMinerBuilder::new()
                    .algorithm(Algorithm::DirectVertical)
                    .window_batches(window)
                    .min_support(minsup)
                    .backend(StorageBackend::DiskTemp)
                    .catalog(workload.catalog.clone())
                    .durable(dir.path())
                    // Not a divisor of the stream length: the final batches
                    // live only in the WAL, so recovery really replays.
                    .checkpoint_every(3);
                if recover {
                    builder = builder.recover();
                }
                builder.build().expect("miner")
            };
            let mut miner = build(false);
            for batch in &workload.batches {
                miner.ingest_batch(batch).expect("ingest");
            }
            let expected = miner.mine().expect("mine");
            let stats = expected.stats().clone();
            // "Crash": drop without a shutdown checkpoint; recovery has real
            // WAL replay to do.
            drop(miner);

            let start = std::time::Instant::now();
            let mut recovered = build(true);
            let recovery_time = start.elapsed();
            let report = recovered
                .recovery_report()
                .expect("recovered miner has a report")
                .clone();
            let result = recovered.mine().expect("mine recovered");
            assert!(
                result.same_patterns_as(&expected),
                "recovered patterns must match the uninterrupted run: {:?}",
                expected.diff(&result)
            );

            let slides = workload.batches.len() as u64;
            rows.push(vec![
                window.to_string(),
                (stats.wal_bytes_written / slides.max(1)).to_string(),
                format!("{:.1}", stats.fsyncs as f64 / slides.max(1) as f64),
                stats.checkpoint_bytes.to_string(),
                millis(recovery_time),
                report.replayed_batches.to_string(),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "window (batches)",
                    "WAL bytes/slide",
                    "fsyncs/slide",
                    "checkpoint bytes",
                    "recovery ms",
                    "batches replayed"
                ],
                &rows
            )
        );

        // The zero-cost claim, asserted: durability off (and in particular
        // the memory backend) adds no WAL, no fsyncs, no checkpoints.
        let mut volatile = StreamMinerBuilder::new()
            .algorithm(Algorithm::DirectVertical)
            .window_batches(5)
            .min_support(minsup)
            .backend(StorageBackend::Memory)
            .catalog(workload.catalog.clone())
            .build()
            .expect("miner");
        for batch in &workload.batches {
            volatile.ingest_batch(batch).expect("ingest");
        }
        let volatile_stats = volatile.mine().expect("mine").stats().clone();
        assert_eq!(volatile_stats.wal_bytes_written, 0);
        assert_eq!(volatile_stats.fsyncs, 0);
        assert_eq!(volatile_stats.checkpoint_bytes, 0);
        assert_eq!(volatile_stats.recovery_replayed_batches, 0);
        println!(
            "recovered patterns identical to the uninterrupted run (asserted); \
             memory backend pays 0 WAL bytes, 0 fsyncs, 0 checkpoint bytes (asserted)\n"
        );
    }
}

/// Disk read-amplification section: pages fetched from the paged files and
/// words assembled into flat rows per mine call on the disk backend — the
/// eager path (cache budget 0, per-mine full-window assembly) against the
/// pinned chunk cache (rows mined straight from pinned decoded chunks).
///
/// All columns are measured via [`DsMatrix::read_stats`].  The steady-state
/// row demonstrates the incremental bound twice over: once the window is
/// warm, the budgeted path fetches only the chunks the preceding slide
/// invalidated (~rows touched by the slide) **and assembles zero words** —
/// the pinned read path never materialises a flat row — and the section
/// asserts both bounds instead of merely printing them.
fn disk_read_amplification(setup: &Setup) {
    let window = setup.window;
    println!("# Disk read amplification — pages fetched / words assembled per mine call (disk backend)\n");
    for (workload, _) in &setup.workloads {
        let make = |budget: usize| {
            DsMatrix::new(
                DsMatrixConfig::new(
                    WindowConfig::new(window).expect("window"),
                    StorageBackend::DiskTemp,
                    workload.catalog.num_edges(),
                )
                .with_cache_budget(budget),
            )
            .expect("matrix")
        };
        let mut eager = make(0);
        let mut budgeted = make(usize::MAX);
        let mut mines = 0u64;
        // eager pages, budgeted pages, cache hits, eager words, budgeted
        // words, budgeted rows pinned
        let mut totals = [0u64; 6];
        let mut steady = [0u64; 6]; // same, counted once the window is full
        let mut steady_mines = 0u64;
        let mut steady_slide_rows = 0u64;
        for (idx, batch) in workload.batches.iter().enumerate() {
            let rows_before = budgeted.capture_stats().rows_written;
            eager.ingest_batch(batch).expect("ingest");
            budgeted.ingest_batch(batch).expect("ingest");
            let slide_rows = budgeted.capture_stats().rows_written - rows_before;

            let (e0, b0) = (eager.read_stats(), budgeted.read_stats());
            let eager_view = eager.view().expect("view");
            assert_eq!(eager_view.num_transactions(), eager.num_transactions());
            let budgeted_view = budgeted.view().expect("view");
            assert_eq!(
                budgeted_view.num_transactions(),
                budgeted.num_transactions()
            );
            eager.trim_cache();
            budgeted.trim_cache();
            let (e1, b1) = (eager.read_stats(), budgeted.read_stats());

            let delta = [
                e1.pages_read - e0.pages_read,
                b1.pages_read - b0.pages_read,
                b1.cache_hits - b0.cache_hits,
                e1.words_assembled - e0.words_assembled,
                b1.words_assembled - b0.words_assembled,
                b1.rows_pinned - b0.rows_pinned,
            ];
            mines += 1;
            for (total, d) in totals.iter_mut().zip(delta) {
                *total += d;
            }
            if idx >= window {
                steady_mines += 1;
                steady_slide_rows += slide_rows;
                for (total, d) in steady.iter_mut().zip(delta) {
                    *total += d;
                }
            }
        }
        println!("## {} ({})\n", workload.name, workload.stats());
        println!(
            "{}",
            markdown_table(
                &[
                    "read path (disk)",
                    "pages/mine",
                    "words/mine",
                    "rows pinned/mine",
                    "hits/mine"
                ],
                &[
                    vec![
                        "eager (budget 0)".to_string(),
                        (totals[0] / mines.max(1)).to_string(),
                        (totals[3] / mines.max(1)).to_string(),
                        "0".to_string(),
                        "0".to_string(),
                    ],
                    vec![
                        "pinned chunk cache".to_string(),
                        (totals[1] / mines.max(1)).to_string(),
                        (totals[4] / mines.max(1)).to_string(),
                        (totals[5] / mines.max(1)).to_string(),
                        (totals[2] / mines.max(1)).to_string(),
                    ],
                    vec![
                        "  steady state only".to_string(),
                        (steady[1] / steady_mines.max(1)).to_string(),
                        (steady[4] / steady_mines.max(1)).to_string(),
                        (steady[5] / steady_mines.max(1)).to_string(),
                        (steady[2] / steady_mines.max(1)).to_string(),
                    ],
                ]
            )
        );
        // The zero-copy disk claim, asserted: with the budget covering the
        // working set, mining assembles nothing — cold or steady.
        assert_eq!(
            totals[4], 0,
            "pinned-path mines must assemble zero words (got {})",
            totals[4]
        );
        assert!(
            totals[3] > 0,
            "the eager column must show the assembly it pays"
        );
        if steady_mines > 0 {
            assert_eq!(
                steady[4], 0,
                "steady-state pinned mines must assemble zero words"
            );
            // A chunk spans one segment's columns; bound its pages by the
            // largest batch in the stream (16 bytes of slack covers the
            // serialisation header plus word rounding).
            let max_batch_bits = workload.batches.iter().map(|b| b.len()).max().unwrap_or(0);
            let pages_per_chunk = (max_batch_bits.div_ceil(8) + 16)
                .div_ceil(fsm_storage::SegmentedWindowStore::SEGMENT_PAGE_SIZE)
                .max(1) as u64;
            let bound = steady_slide_rows * pages_per_chunk;
            assert!(
                steady[1] <= bound,
                "budgeted steady-state pages ({}) exceed the slide bound ({bound})",
                steady[1]
            );
            println!(
                "steady state: {} pages/mine and 0 words assembled for {} rows touched/slide \
                 (both bounds hold); eager re-read {:.1}x more pages and assembled {} words/mine\n",
                steady[1] / steady_mines.max(1),
                steady_slide_rows / steady_mines.max(1),
                steady[0] as f64 / steady[1].max(1) as f64,
                steady[3] / steady_mines.max(1),
            );
        }
    }
}

/// Read-amplification section: words of window data the read path
/// materialises per mine call, before/after the `WindowView` refactor.
///
/// The "before" column is measured, not modelled: [`DsMatrix::snapshot`] is
/// the retained eager read path (still what the disk backends fall back to),
/// and [`DsMatrix::read_stats`] counts the words it copies.  The view column
/// is zero by construction on the memory backend — its cost moved to the
/// slide-proportional cache maintenance, reported alongside so nothing
/// hides.
fn read_amplification(setup: &Setup) {
    println!("# Read amplification — words materialised per mine call (read path)\n");
    for (workload, _) in &setup.workloads {
        let mut matrix = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(setup.window).expect("window"),
            StorageBackend::Memory,
            workload.catalog.num_edges(),
        ))
        .expect("matrix");
        let mut mines = 0u64;
        let mut view_words = 0u64;
        let mut snapshot_words = 0u64;
        let mut splice_words = 0u64;
        let mut compact_words = 0u64;
        for batch in &workload.batches {
            let before = matrix.read_stats();
            matrix.ingest_batch(batch).expect("ingest");
            let ingested = matrix.read_stats();
            // Mine-after-slide, zero-copy path: what the view materialises.
            let view = matrix.view().expect("view");
            assert_eq!(view.num_transactions(), matrix.num_transactions());
            let viewed = matrix.read_stats();
            // The demoted eager path over the same window, for comparison.
            let snapshot = matrix.snapshot().expect("snapshot");
            assert_eq!(snapshot.num_transactions(), matrix.num_transactions());
            let snapshotted = matrix.read_stats();

            mines += 1;
            splice_words += ingested.cache_splice_words - before.cache_splice_words;
            compact_words += ingested.cache_compact_words - before.cache_compact_words;
            view_words += viewed.words_assembled - ingested.words_assembled;
            snapshot_words += snapshotted.words_assembled - viewed.words_assembled;
        }
        println!("## {} ({})\n", workload.name, workload.stats());
        println!(
            "{}",
            markdown_table(
                &["read path", "words/mine (measured)", "total words"],
                &[
                    vec![
                        "window view (zero-copy)".to_string(),
                        (view_words / mines.max(1)).to_string(),
                        view_words.to_string(),
                    ],
                    vec![
                        "  + cache splice (at ingest)".to_string(),
                        (splice_words / mines.max(1)).to_string(),
                        splice_words.to_string(),
                    ],
                    vec![
                        "  + cache compaction (amortised)".to_string(),
                        (compact_words / mines.max(1)).to_string(),
                        compact_words.to_string(),
                    ],
                    vec![
                        "eager snapshot (old default)".to_string(),
                        (snapshot_words / mines.max(1)).to_string(),
                        snapshot_words.to_string(),
                    ],
                ]
            )
        );
        let incremental = view_words + splice_words + compact_words;
        let ratio = snapshot_words as f64 / incremental.max(1) as f64;
        println!("read amplification avoided: {ratio:.1}x\n");
    }
}

/// Concurrent ingest + mine section: every slide is frozen as an epoch
/// snapshot ([`StreamMiner::snapshot`]) and mined on a worker thread while
/// ingest keeps appending on the main thread — against the stop-the-world
/// loop that mines after every slide before ingesting the next batch.
///
/// Two claims are *asserted*, not just printed: overlap really happened
/// (slides completed while a mine was in flight, counted via a shared
/// progress counter the worker reads when each mine finishes — summed over
/// the suite, since a fast workload's individual mines can beat the next
/// ingest), and there is no correctness divergence (every
/// concurrently-mined epoch's patterns are identical to the
/// stop-the-world miner's at that epoch).  The table shows
/// the third claim — ingest stall ≈ 0: the writer's per-ingest latency is
/// unchanged by the mining running underneath it, because a snapshot is
/// `Arc`-shared segments, never a copy and never a lock the writer waits on.
fn concurrent_ingest_mine(setup: &Setup) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::{Duration, Instant};

    println!("# Concurrent ingest + mine — epoch snapshots vs stop-the-world\n");
    let mut suite_overlap = 0u64;
    for (workload, minsup) in &setup.workloads {
        let minsup = *minsup;
        let build = || -> StreamMiner {
            StreamMinerBuilder::new()
                .algorithm(Algorithm::DirectVertical)
                .window_batches(setup.window)
                .min_support(minsup)
                .backend(StorageBackend::DiskTemp)
                .cache_budget_bytes(usize::MAX)
                .catalog(workload.catalog.clone())
                .build()
                .expect("miner")
        };

        // Stop-the-world baseline: ingest waits for every mine.
        let mut sequential = build();
        let mut seq_results = Vec::new();
        let (mut seq_ingest, mut seq_ingest_max) = (Duration::ZERO, Duration::ZERO);
        let seq_start = Instant::now();
        for batch in &workload.batches {
            let t = Instant::now();
            sequential.ingest_batch(batch).expect("ingest");
            let dt = t.elapsed();
            seq_ingest += dt;
            seq_ingest_max = seq_ingest_max.max(dt);
            seq_results.push(sequential.mine().expect("mine"));
        }
        let seq_wall = seq_start.elapsed();

        // Concurrent run: the writer never waits; a worker thread mines
        // every epoch snapshot it is handed.
        let mut concurrent = build();
        let ingested = Arc::new(AtomicU64::new(0));
        let (mut conc_ingest, mut conc_ingest_max) = (Duration::ZERO, Duration::ZERO);
        let conc_start = Instant::now();
        let (mined, overlap) = std::thread::scope(|scope| {
            let (jobs, worker_jobs) = mpsc::channel::<MinerSnapshot>();
            let progress = Arc::clone(&ingested);
            let worker = scope.spawn(move || {
                let mut mined = Vec::new();
                let mut overlap = 0u64;
                for job in worker_jobs {
                    let at_snapshot = job.last_batch_id().map_or(0, |id| id + 1);
                    let result = job.mine().expect("snapshot mine");
                    // Slides the writer completed while this mine ran.
                    overlap += progress.load(Ordering::Relaxed).saturating_sub(at_snapshot);
                    mined.push((job.last_batch_id(), result));
                }
                (mined, overlap)
            });
            for batch in &workload.batches {
                let t = Instant::now();
                concurrent.ingest_batch(batch).expect("ingest");
                let dt = t.elapsed();
                conc_ingest += dt;
                conc_ingest_max = conc_ingest_max.max(dt);
                ingested.fetch_add(1, Ordering::Relaxed);
                jobs.send(concurrent.snapshot().expect("snapshot"))
                    .expect("mining worker alive");
            }
            drop(jobs);
            worker.join().expect("mining worker panicked")
        });
        let conc_wall = conc_start.elapsed();

        // No correctness divergence: every concurrently-mined epoch equals
        // the stop-the-world patterns at that epoch.
        assert_eq!(mined.len(), seq_results.len());
        for (last, result) in &mined {
            let idx = last.expect("every mined epoch has a newest batch") as usize;
            assert!(
                result.same_patterns_as(&seq_results[idx]),
                "{}: concurrent mine diverged at epoch {idx}: {:?}",
                workload.name,
                seq_results[idx].diff(result)
            );
        }
        suite_overlap += overlap;

        let per = |d: Duration| {
            format!(
                "{:.0}",
                d.as_secs_f64() * 1e6 / workload.batches.len().max(1) as f64
            )
        };
        println!("## {} ({})\n", workload.name, workload.stats());
        println!(
            "{}",
            markdown_table(
                &[
                    "mode",
                    "wall ms (stream)",
                    "avg ingest µs",
                    "max ingest µs",
                    "epochs mined"
                ],
                &[
                    vec![
                        "stop-the-world".to_string(),
                        millis(seq_wall),
                        per(seq_ingest),
                        format!("{:.0}", seq_ingest_max.as_secs_f64() * 1e6),
                        seq_results.len().to_string(),
                    ],
                    vec![
                        "concurrent (epoch snapshots)".to_string(),
                        millis(conc_wall),
                        per(conc_ingest),
                        format!("{:.0}", conc_ingest_max.as_secs_f64() * 1e6),
                        mined.len().to_string(),
                    ],
                ]
            )
        );
        let stall = conc_ingest.as_secs_f64() / seq_ingest.as_secs_f64().max(1e-9);
        println!(
            "slides completed while a mine was in flight: {overlap}; \
             every epoch byte-identical to stop-the-world (asserted); \
             ingest stall vs stop-the-world: {stall:.2}x avg\n"
        );
    }
    // A fast workload's mines can individually finish before the next
    // ingest lands, but across the suite the overlap must be real.
    assert!(
        suite_overlap > 0,
        "no slide in the whole suite completed while a mine was in flight"
    );
    println!(
        "suite total: {suite_overlap} slides completed while a mine was in flight (asserted > 0)\n"
    );
}

/// Slide-cost section: words the incremental DSMatrix actually writes per
/// window slide, against what a full-rewrite capture (re-serialising every
/// row on every batch, the pre-segmented implementation) would have written.
///
/// The counters come from [`DsMatrix::capture_stats`], so the table reports
/// measured writes, not a model; only the full-rewrite column is computed
/// (rows x (window words + header) summed over the same slides).
fn slide_cost(setup: &Setup) {
    println!("# Slide cost — words written per window slide (capture path)\n");
    for (workload, _) in &setup.workloads {
        let mut matrix = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(setup.window).expect("window"),
            StorageBackend::DiskTemp,
            workload.catalog.num_edges(),
        ))
        .expect("matrix");
        let mut full_rewrite_words = 0u64;
        for batch in &workload.batches {
            matrix.ingest_batch(batch).expect("ingest");
            // What the old capture path would have written for this slide:
            // every row, re-serialised at the new window width.
            let window_words = (matrix.num_transactions().div_ceil(64) + 1) as u64;
            full_rewrite_words += matrix.num_items() as u64 * window_words;
        }
        let stats = matrix.capture_stats();
        let slides = workload.batches.len() as u64;
        println!("## {} ({})\n", workload.name, workload.stats());
        println!(
            "{}",
            markdown_table(
                &[
                    "capture",
                    "words/slide",
                    "rows touched/slide",
                    "total words"
                ],
                &[
                    vec![
                        "incremental (measured)".to_string(),
                        (stats.words_written / slides.max(1)).to_string(),
                        (stats.rows_written / slides.max(1)).to_string(),
                        stats.words_written.to_string(),
                    ],
                    vec![
                        "full rewrite (computed)".to_string(),
                        (full_rewrite_words / slides.max(1)).to_string(),
                        matrix.num_items().to_string(),
                        full_rewrite_words.to_string(),
                    ],
                ]
            )
        );
        let ratio = full_rewrite_words as f64 / stats.words_written.max(1) as f64;
        println!("write amplification avoided: {ratio:.1}x\n");
    }
}

/// Parallel-scaling run: the two vertical algorithms at 1 worker versus
/// `threads` workers over the same captured windows.
///
/// The pattern cap is two deeper than the main table's so that the
/// enumeration (the parallel region) dominates the mining call rather than
/// row loading and post-processing.
fn parallel_scaling(setup: &Setup) {
    let threads = setup.threads;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_len = setup.max_len.map(|m| m + 2);
    println!("# Parallel scaling — vertical engines at {threads} threads vs 1\n");
    println!("available cores: {cores}");
    if cores < threads {
        println!(
            "note: only {cores} core(s) visible to this process — speedup is \
             bounded by hardware, not by the engine; re-run on a multi-core \
             host for the real curve"
        );
    }
    println!();
    for (workload, minsup) in &setup.workloads {
        println!("## {} ({})\n", workload.name, workload.stats());
        let mut rows = Vec::new();
        for algorithm in [Algorithm::Vertical, Algorithm::DirectVertical] {
            let timing = |workers: usize| {
                let mut total = std::time::Duration::ZERO;
                let mut patterns = 0;
                for _ in 0..setup.repeats {
                    let run = run_algorithm_threaded(
                        workload,
                        algorithm,
                        setup.window,
                        *minsup,
                        max_len,
                        StorageBackend::Memory,
                        workers,
                    )
                    .expect("run");
                    total += run.mining_time;
                    patterns = run.patterns;
                }
                (total / setup.repeats, patterns)
            };
            let (sequential, patterns_seq) = timing(1);
            let (parallel, patterns_par) = timing(threads);
            assert_eq!(
                patterns_seq, patterns_par,
                "parallel run must find identical patterns"
            );
            let speedup = sequential.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
            rows.push(vec![
                algorithm.key().to_string(),
                millis(sequential),
                millis(parallel),
                format!("{speedup:.2}x"),
                patterns_par.to_string(),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "miner",
                    "mine ms (1 thread)",
                    &format!("mine ms ({threads} threads)"),
                    "speedup",
                    "patterns"
                ],
                &rows
            )
        );
    }
}

/// One workload's delta-mining numbers, persisted via `--json-out`.
struct DeltaRow {
    workload: String,
    slides: u64,
    steady_slides: u64,
    steady_reexamined_per_slide: f64,
    steady_affected_per_slide: f64,
    steady_tracked_per_slide: f64,
    steady_border_updates_per_slide: f64,
    steady_full_screens_per_slide: f64,
    final_patterns: usize,
    delta_ms: f64,
    full_ms: f64,
    steady_delta_ms_per_slide: f64,
    steady_full_ms_per_slide: f64,
    rebuilds: u64,
}

/// Delta-mining section: the maintained pattern set
/// ([`fsm_core::StreamMiner::mine_delta`]) against a full re-mine after
/// every slide.  The oracle runs [`Algorithm::Vertical`] — the same §3.4
/// enumeration the delta tree maintains incrementally, so its intersection
/// count is the work a from-scratch mine spends on the identical candidate
/// space.  Byte-identity with the oracle is *asserted* at every epoch; once
/// the window is warm a slide must never
/// fall back to a full rebuild, must re-examine fewer patterns than the
/// full re-mine screens candidates, and must keep its total support
/// evaluations (arrival-walk probes plus border updates, each touching one
/// arriving segment's chunks) below the full re-mine's whole-window volume
/// (screens × window batches) — the point of the layer.
fn delta_mining(setup: &Setup) -> Vec<DeltaRow> {
    use std::time::{Duration, Instant};

    println!("# Delta mining — maintained pattern set vs full re-mine per slide\n");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for (workload, minsup) in &setup.workloads {
        let build = |delta: bool, algorithm: Algorithm| -> StreamMiner {
            let mut builder = StreamMinerBuilder::new()
                .algorithm(algorithm)
                .window_batches(setup.window)
                .min_support(*minsup)
                .backend(StorageBackend::DiskTemp)
                .delta(delta)
                .catalog(workload.catalog.clone());
            if let Some(max) = setup.max_len {
                builder = builder.max_pattern_len(max);
            }
            builder.build().expect("miner")
        };
        let mut delta_miner = build(true, Algorithm::DirectVertical);
        let mut oracle = build(false, Algorithm::Vertical);
        let (mut delta_time, mut full_time) = (Duration::ZERO, Duration::ZERO);
        let (mut steady_delta_time, mut steady_full_time) = (Duration::ZERO, Duration::ZERO);
        let mut rebuilds = 0u64;
        // steady-state totals: re-examined, affected, tracked, rebuilds,
        // border updates, full-oracle intersections
        let mut steady = [0u64; 6];
        let mut steady_slides = 0u64;
        let mut final_patterns = 0usize;
        for (idx, batch) in workload.batches.iter().enumerate() {
            delta_miner.ingest_batch(batch).expect("ingest");
            oracle.ingest_batch(batch).expect("ingest");
            let t = Instant::now();
            let incremental = delta_miner.mine().expect("delta mine");
            let delta_elapsed = t.elapsed();
            delta_time += delta_elapsed;
            let t = Instant::now();
            let full = oracle.mine().expect("full mine");
            let full_elapsed = t.elapsed();
            full_time += full_elapsed;
            assert!(
                incremental.same_patterns_as(&full),
                "{} epoch {idx}: delta diverged from the full re-mine: {:?}",
                workload.name,
                full.diff(&incremental)
            );
            let stats = &incremental.stats().delta;
            rebuilds += stats.full_rebuilds;
            final_patterns = full.len();
            if idx >= setup.window {
                steady_slides += 1;
                steady[0] += stats.patterns_reexamined;
                steady[1] += stats.patterns_affected;
                steady[2] += stats.patterns_tracked as u64;
                steady[3] += stats.full_rebuilds;
                steady[4] += stats.border_updates;
                steady[5] += full.stats().intersections;
                steady_delta_time += delta_elapsed;
                steady_full_time += full_elapsed;
            }
        }
        let per = |total: u64| total as f64 / steady_slides.max(1) as f64;
        if steady_slides > 0 {
            // Batches are fixed-size, so the resolved relative threshold is
            // stable once the window is full: no steady-state rebuilds.
            assert_eq!(
                steady[3], 0,
                "{}: delta mining rebuilt in the steady state",
                workload.name
            );
            // The full oracle re-screens every candidate of the §3.4
            // enumeration against full window rows each mine; a steady delta
            // slide re-examines only the patterns the slide touched.
            assert!(
                steady[0] < steady[5],
                "{}: steady-state patterns re-examined/slide ({:.0}) must stay \
                 strictly below the full re-mine's candidate screens ({:.0})",
                workload.name,
                per(steady[0]),
                per(steady[5]),
            );
            // Volume bound: every delta evaluation (probe or border update)
            // touches at most one arriving segment's chunks — 1/window of
            // the whole-window row a full-mine screen intersects.
            assert!(
                steady[0] + steady[4] < steady[5] * setup.window as u64,
                "{}: steady-state delta support evaluations/slide ({:.0} probes \
                 + {:.0} border updates, one segment chunk each) must stay \
                 below the full re-mine's whole-window volume ({:.0} screens x \
                 {} window batches)",
                workload.name,
                per(steady[0]),
                per(steady[4]),
                per(steady[5]),
                setup.window,
            );
        }
        let per_ms = |total: Duration| total.as_secs_f64() * 1e3 / steady_slides.max(1) as f64;
        rows.push(vec![
            workload.name.clone(),
            format!("{:.0}", per(steady[2])),
            format!("{:.0}", per(steady[0])),
            format!("{:.0}", per(steady[4])),
            format!("{:.0}", per(steady[5])),
            format!("{:.3}", per_ms(steady_delta_time)),
            format!("{:.3}", per_ms(steady_full_time)),
            rebuilds.to_string(),
        ]);
        out.push(DeltaRow {
            workload: workload.name.clone(),
            slides: workload.batches.len() as u64,
            steady_slides,
            steady_reexamined_per_slide: per(steady[0]),
            steady_affected_per_slide: per(steady[1]),
            steady_tracked_per_slide: per(steady[2]),
            steady_border_updates_per_slide: per(steady[4]),
            steady_full_screens_per_slide: per(steady[5]),
            final_patterns,
            delta_ms: delta_time.as_secs_f64() * 1e3,
            full_ms: full_time.as_secs_f64() * 1e3,
            steady_delta_ms_per_slide: per_ms(steady_delta_time),
            steady_full_ms_per_slide: per_ms(steady_full_time),
            rebuilds,
        });
    }
    println!(
        "{}",
        markdown_table(
            &[
                "workload",
                "tracked/slide (steady)",
                "probes/slide",
                "border upd/slide",
                "full screens/slide",
                "delta ms/slide (steady)",
                "full ms/slide (steady)",
                "rebuilds"
            ],
            &rows
        )
    );
    println!(
        "every epoch byte-identical to the full re-mine (asserted); steady-state \
         re-examined < full screens and total delta evaluations < screens x \
         window (asserted) — delta evaluations touch one segment's chunks, \
         full screens whole window rows; delta wins wall-clock where the \
         active border stays small relative to the candidate space \
         (graph-model), the dense stream is the adversarial worst case\n"
    );
    out
}

/// One measured BitVec kernel cell, persisted via `--json-out`.
struct KernelRow {
    kernel: &'static str,
    bits: usize,
    ns_per_op: f64,
}

/// In-binary timing of the unrolled intersection kernels (the Criterion
/// bench `bitvec_kernels` is the statistically rigorous version; this one is
/// cheap enough to run in CI and to persist alongside the delta numbers).
fn kernel_timings() -> Vec<KernelRow> {
    use std::hint::black_box;
    use std::time::Instant;

    println!("# BitVec kernels — unrolled and_count / and_into (ns per call)\n");
    let mut out = Vec::new();
    let mut rows = Vec::new();
    for bits in [1usize << 10, 1 << 14, 1 << 17] {
        // Deterministic mixed-density operands.
        let mut state = 0x9e3779b97f4a7c15u64 ^ bits as u64;
        let mut step = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) & 1 == 1
        };
        let a = BitVec::from_bools((0..bits).map(|_| step()));
        let b = BitVec::from_bools((0..bits).map(|_| step()));
        let iters = (1 << 24) / bits.max(1);

        let start = Instant::now();
        let mut sink = 0u64;
        for _ in 0..iters {
            sink ^= black_box(&a).and_count(black_box(&b));
        }
        let count_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
        black_box(sink);

        let mut buf = BitVec::new();
        let start = Instant::now();
        for _ in 0..iters {
            sink ^= black_box(&a).and_into(black_box(&b), &mut buf);
        }
        let into_ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
        black_box(sink);

        rows.push(vec![
            bits.to_string(),
            format!("{count_ns:.0}"),
            format!("{into_ns:.0}"),
        ]);
        out.push(KernelRow {
            kernel: "and_count",
            bits,
            ns_per_op: count_ns,
        });
        out.push(KernelRow {
            kernel: "and_into",
            bits,
            ns_per_op: into_ns,
        });
    }
    println!(
        "{}",
        markdown_table(&["bits", "and_count ns", "and_into ns"], &rows)
    );
    println!();
    out
}

/// Hand-rolled JSON (the workspace carries no serde): the delta section's
/// per-workload numbers plus the kernel timings.
fn render_json(delta: &[DeltaRow], kernels: &[KernelRow]) -> String {
    let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let delta_objects: Vec<String> = delta
        .iter()
        .map(|r| {
            format!(
                "    {{\"workload\": \"{}\", \"slides\": {}, \"steady_slides\": {}, \
                 \"steady_reexamined_per_slide\": {:.1}, \"steady_affected_per_slide\": {:.1}, \
                 \"steady_tracked_per_slide\": {:.1}, \
                 \"steady_border_updates_per_slide\": {:.1}, \
                 \"steady_full_screens_per_slide\": {:.1}, \"final_patterns\": {}, \
                 \"delta_ms\": {:.2}, \"full_ms\": {:.2}, \
                 \"steady_delta_ms_per_slide\": {:.3}, \
                 \"steady_full_ms_per_slide\": {:.3}, \"rebuilds\": {}}}",
                escape(&r.workload),
                r.slides,
                r.steady_slides,
                r.steady_reexamined_per_slide,
                r.steady_affected_per_slide,
                r.steady_tracked_per_slide,
                r.steady_border_updates_per_slide,
                r.steady_full_screens_per_slide,
                r.final_patterns,
                r.delta_ms,
                r.full_ms,
                r.steady_delta_ms_per_slide,
                r.steady_full_ms_per_slide,
                r.rebuilds,
            )
        })
        .collect();
    let kernel_objects: Vec<String> = kernels
        .iter()
        .map(|r| {
            format!(
                "    {{\"kernel\": \"{}\", \"bits\": {}, \"ns_per_op\": {:.1}}}",
                r.kernel, r.bits, r.ns_per_op
            )
        })
        .collect();
    format!(
        "{{\n  \"delta\": [\n{}\n  ],\n  \"kernels\": [\n{}\n  ]\n}}\n",
        delta_objects.join(",\n"),
        kernel_objects.join(",\n")
    )
}
