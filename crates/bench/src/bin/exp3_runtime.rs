//! Experiment E3 (§5, third experiment + Figure 2): time efficiency.
//!
//! Expected ordering (paper): runtime(multi-tree) > runtime(single-tree ≈
//! top-down) > runtime(vertical) > runtime(direct-vertical).  Figure 2 plots
//! the two vertical algorithms against each other; the companion Criterion
//! bench `fig2_vertical` produces the statistically rigorous version of that
//! figure, while this binary prints the full table across all algorithms.

use fsm_bench::report::{markdown_table, millis};
use fsm_bench::{run_algorithm_on, run_algorithm_threaded, run_baselines_on, Workload};
use fsm_core::{Algorithm, MinerSnapshot, StreamMiner, StreamMinerBuilder};
use fsm_dsmatrix::{DsMatrix, DsMatrixConfig};
use fsm_storage::StorageBackend;
use fsm_stream::WindowConfig;
use fsm_types::MinSup;

fn main() {
    let mut scale = None;
    let mut threads = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = if arg == "--threads" {
            args.next().and_then(|s| s.parse().ok()).map(|n| {
                // Resolve "all cores" up front so the report names the real
                // worker count.
                threads = if n == 0 {
                    std::thread::available_parallelism()
                        .map(|c| c.get())
                        .unwrap_or(1)
                } else {
                    n
                };
            })
        } else if scale.is_none() {
            arg.parse().ok().map(|n| scale = Some(n))
        } else {
            None
        };
        if parsed.is_none() {
            eprintln!("usage: exp3_runtime [SCALE] [--threads N]");
            std::process::exit(2);
        }
    }
    let scale = scale.unwrap_or(1);
    let window = 5;
    let max_len = Some(4);
    let repeats = 3;

    println!("# Experiment E3 — time efficiency (averaged over {repeats} runs)\n");

    for workload in Workload::standard_suite(scale) {
        let minsup = match workload.kind {
            fsm_bench::WorkloadKind::Dense => MinSup::relative(0.15),
            _ => MinSup::relative(0.03),
        };
        println!("## {} ({})\n", workload.name, workload.stats());
        let mut rows = Vec::new();
        let mut timings = std::collections::BTreeMap::new();

        for algorithm in Algorithm::ALL {
            let mut total_mine = std::time::Duration::ZERO;
            let mut total_capture = std::time::Duration::ZERO;
            let mut patterns = 0;
            for _ in 0..repeats {
                let run = run_algorithm_on(
                    &workload,
                    algorithm,
                    window,
                    minsup,
                    max_len,
                    StorageBackend::DiskTemp,
                )
                .expect("run");
                total_mine += run.mining_time;
                total_capture += run.capture_time;
                patterns = run.patterns;
            }
            let mine_avg = total_mine / repeats;
            timings.insert(algorithm.key().to_string(), mine_avg);
            rows.push(vec![
                algorithm.key().to_string(),
                millis(total_capture / repeats),
                millis(mine_avg),
                patterns.to_string(),
            ]);
        }
        for run_result in run_baselines_on(&workload, window, minsup, max_len).expect("baselines") {
            rows.push(vec![
                run_result.label.clone(),
                millis(run_result.capture_time),
                millis(run_result.mining_time),
                run_result.patterns.to_string(),
            ]);
        }

        println!(
            "{}",
            markdown_table(
                &[
                    "miner",
                    "capture ms (stream)",
                    "mine ms (window)",
                    "patterns"
                ],
                &rows
            )
        );

        let get = |k: &str| timings.get(k).copied().unwrap_or_default();
        let horizontal_slowest = get("multi-tree");
        let single = get("single-tree").min(get("top-down"));
        let vertical = get("vertical");
        let direct = get("direct-vertical");
        println!(
            "ordering check: multi-tree ({} ms) >= single/top-down ({} ms) >= vertical ({} ms) >= direct ({} ms) : {}\n",
            millis(horizontal_slowest),
            millis(single),
            millis(vertical),
            millis(direct),
            if horizontal_slowest >= single && single >= vertical && vertical >= direct {
                "holds"
            } else {
                "see Criterion bench for the statistically robust comparison"
            }
        );
    }

    parallel_scaling(scale, threads, window, max_len, repeats);
    concurrent_ingest_mine(scale, window);
    slide_cost(scale, window);
    read_amplification(scale, window);
    disk_read_amplification(scale, window);
    durability(scale);
}

/// Durability section: what WAL-before-apply costs per slide (bytes appended
/// and fsyncs issued), what checkpoints cost in bytes, and how long crash
/// recovery (newest checkpoint + WAL-tail replay) takes as the window grows.
///
/// Every row is measured: the run is "crashed" by dropping the miner without
/// a shutdown checkpoint, recovered with [`StreamMiner::recover`], and the
/// recovered window's patterns are asserted identical to the uninterrupted
/// run's.  The memory backend is asserted to pay nothing — all durability
/// counters stay zero when durability is off.
fn durability(scale: usize) {
    println!("# Durability — WAL overhead per slide, recovery time vs window size\n");
    for workload in Workload::standard_suite(scale) {
        let minsup = match workload.kind {
            fsm_bench::WorkloadKind::Dense => MinSup::relative(0.15),
            _ => MinSup::relative(0.03),
        };
        println!("## {} ({})\n", workload.name, workload.stats());
        let mut rows = Vec::new();
        for window in [3usize, 5, 10] {
            let dir = fsm_storage::TempDir::new("bench-durable").expect("tempdir");
            let build = |recover: bool| -> StreamMiner {
                let mut builder = StreamMinerBuilder::new()
                    .algorithm(Algorithm::DirectVertical)
                    .window_batches(window)
                    .min_support(minsup)
                    .backend(StorageBackend::DiskTemp)
                    .catalog(workload.catalog.clone())
                    .durable(dir.path())
                    // Not a divisor of the stream length: the final batches
                    // live only in the WAL, so recovery really replays.
                    .checkpoint_every(3);
                if recover {
                    builder = builder.recover();
                }
                builder.build().expect("miner")
            };
            let mut miner = build(false);
            for batch in &workload.batches {
                miner.ingest_batch(batch).expect("ingest");
            }
            let expected = miner.mine().expect("mine");
            let stats = expected.stats().clone();
            // "Crash": drop without a shutdown checkpoint; recovery has real
            // WAL replay to do.
            drop(miner);

            let start = std::time::Instant::now();
            let mut recovered = build(true);
            let recovery_time = start.elapsed();
            let report = recovered
                .recovery_report()
                .expect("recovered miner has a report")
                .clone();
            let result = recovered.mine().expect("mine recovered");
            assert!(
                result.same_patterns_as(&expected),
                "recovered patterns must match the uninterrupted run: {:?}",
                expected.diff(&result)
            );

            let slides = workload.batches.len() as u64;
            rows.push(vec![
                window.to_string(),
                (stats.wal_bytes_written / slides.max(1)).to_string(),
                format!("{:.1}", stats.fsyncs as f64 / slides.max(1) as f64),
                stats.checkpoint_bytes.to_string(),
                millis(recovery_time),
                report.replayed_batches.to_string(),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "window (batches)",
                    "WAL bytes/slide",
                    "fsyncs/slide",
                    "checkpoint bytes",
                    "recovery ms",
                    "batches replayed"
                ],
                &rows
            )
        );

        // The zero-cost claim, asserted: durability off (and in particular
        // the memory backend) adds no WAL, no fsyncs, no checkpoints.
        let mut volatile = StreamMinerBuilder::new()
            .algorithm(Algorithm::DirectVertical)
            .window_batches(5)
            .min_support(minsup)
            .backend(StorageBackend::Memory)
            .catalog(workload.catalog.clone())
            .build()
            .expect("miner");
        for batch in &workload.batches {
            volatile.ingest_batch(batch).expect("ingest");
        }
        let volatile_stats = volatile.mine().expect("mine").stats().clone();
        assert_eq!(volatile_stats.wal_bytes_written, 0);
        assert_eq!(volatile_stats.fsyncs, 0);
        assert_eq!(volatile_stats.checkpoint_bytes, 0);
        assert_eq!(volatile_stats.recovery_replayed_batches, 0);
        println!(
            "recovered patterns identical to the uninterrupted run (asserted); \
             memory backend pays 0 WAL bytes, 0 fsyncs, 0 checkpoint bytes (asserted)\n"
        );
    }
}

/// Disk read-amplification section: pages fetched from the paged files and
/// words assembled into flat rows per mine call on the disk backend — the
/// eager path (cache budget 0, per-mine full-window assembly) against the
/// pinned chunk cache (rows mined straight from pinned decoded chunks).
///
/// All columns are measured via [`DsMatrix::read_stats`].  The steady-state
/// row demonstrates the incremental bound twice over: once the window is
/// warm, the budgeted path fetches only the chunks the preceding slide
/// invalidated (~rows touched by the slide) **and assembles zero words** —
/// the pinned read path never materialises a flat row — and the section
/// asserts both bounds instead of merely printing them.
fn disk_read_amplification(scale: usize, window: usize) {
    println!("# Disk read amplification — pages fetched / words assembled per mine call (disk backend)\n");
    for workload in Workload::standard_suite(scale) {
        let make = |budget: usize| {
            DsMatrix::new(
                DsMatrixConfig::new(
                    WindowConfig::new(window).expect("window"),
                    StorageBackend::DiskTemp,
                    workload.catalog.num_edges(),
                )
                .with_cache_budget(budget),
            )
            .expect("matrix")
        };
        let mut eager = make(0);
        let mut budgeted = make(usize::MAX);
        let mut mines = 0u64;
        // eager pages, budgeted pages, cache hits, eager words, budgeted
        // words, budgeted rows pinned
        let mut totals = [0u64; 6];
        let mut steady = [0u64; 6]; // same, counted once the window is full
        let mut steady_mines = 0u64;
        let mut steady_slide_rows = 0u64;
        for (idx, batch) in workload.batches.iter().enumerate() {
            let rows_before = budgeted.capture_stats().rows_written;
            eager.ingest_batch(batch).expect("ingest");
            budgeted.ingest_batch(batch).expect("ingest");
            let slide_rows = budgeted.capture_stats().rows_written - rows_before;

            let (e0, b0) = (eager.read_stats(), budgeted.read_stats());
            let eager_view = eager.view().expect("view");
            assert_eq!(eager_view.num_transactions(), eager.num_transactions());
            let budgeted_view = budgeted.view().expect("view");
            assert_eq!(
                budgeted_view.num_transactions(),
                budgeted.num_transactions()
            );
            eager.trim_cache();
            budgeted.trim_cache();
            let (e1, b1) = (eager.read_stats(), budgeted.read_stats());

            let delta = [
                e1.pages_read - e0.pages_read,
                b1.pages_read - b0.pages_read,
                b1.cache_hits - b0.cache_hits,
                e1.words_assembled - e0.words_assembled,
                b1.words_assembled - b0.words_assembled,
                b1.rows_pinned - b0.rows_pinned,
            ];
            mines += 1;
            for (total, d) in totals.iter_mut().zip(delta) {
                *total += d;
            }
            if idx >= window {
                steady_mines += 1;
                steady_slide_rows += slide_rows;
                for (total, d) in steady.iter_mut().zip(delta) {
                    *total += d;
                }
            }
        }
        println!("## {} ({})\n", workload.name, workload.stats());
        println!(
            "{}",
            markdown_table(
                &[
                    "read path (disk)",
                    "pages/mine",
                    "words/mine",
                    "rows pinned/mine",
                    "hits/mine"
                ],
                &[
                    vec![
                        "eager (budget 0)".to_string(),
                        (totals[0] / mines.max(1)).to_string(),
                        (totals[3] / mines.max(1)).to_string(),
                        "0".to_string(),
                        "0".to_string(),
                    ],
                    vec![
                        "pinned chunk cache".to_string(),
                        (totals[1] / mines.max(1)).to_string(),
                        (totals[4] / mines.max(1)).to_string(),
                        (totals[5] / mines.max(1)).to_string(),
                        (totals[2] / mines.max(1)).to_string(),
                    ],
                    vec![
                        "  steady state only".to_string(),
                        (steady[1] / steady_mines.max(1)).to_string(),
                        (steady[4] / steady_mines.max(1)).to_string(),
                        (steady[5] / steady_mines.max(1)).to_string(),
                        (steady[2] / steady_mines.max(1)).to_string(),
                    ],
                ]
            )
        );
        // The zero-copy disk claim, asserted: with the budget covering the
        // working set, mining assembles nothing — cold or steady.
        assert_eq!(
            totals[4], 0,
            "pinned-path mines must assemble zero words (got {})",
            totals[4]
        );
        assert!(
            totals[3] > 0,
            "the eager column must show the assembly it pays"
        );
        if steady_mines > 0 {
            assert_eq!(
                steady[4], 0,
                "steady-state pinned mines must assemble zero words"
            );
            // A chunk spans one segment's columns; bound its pages by the
            // largest batch in the stream (16 bytes of slack covers the
            // serialisation header plus word rounding).
            let max_batch_bits = workload.batches.iter().map(|b| b.len()).max().unwrap_or(0);
            let pages_per_chunk = (max_batch_bits.div_ceil(8) + 16)
                .div_ceil(fsm_storage::SegmentedWindowStore::SEGMENT_PAGE_SIZE)
                .max(1) as u64;
            let bound = steady_slide_rows * pages_per_chunk;
            assert!(
                steady[1] <= bound,
                "budgeted steady-state pages ({}) exceed the slide bound ({bound})",
                steady[1]
            );
            println!(
                "steady state: {} pages/mine and 0 words assembled for {} rows touched/slide \
                 (both bounds hold); eager re-read {:.1}x more pages and assembled {} words/mine\n",
                steady[1] / steady_mines.max(1),
                steady_slide_rows / steady_mines.max(1),
                steady[0] as f64 / steady[1].max(1) as f64,
                steady[3] / steady_mines.max(1),
            );
        }
    }
}

/// Read-amplification section: words of window data the read path
/// materialises per mine call, before/after the `WindowView` refactor.
///
/// The "before" column is measured, not modelled: [`DsMatrix::snapshot`] is
/// the retained eager read path (still what the disk backends fall back to),
/// and [`DsMatrix::read_stats`] counts the words it copies.  The view column
/// is zero by construction on the memory backend — its cost moved to the
/// slide-proportional cache maintenance, reported alongside so nothing
/// hides.
fn read_amplification(scale: usize, window: usize) {
    println!("# Read amplification — words materialised per mine call (read path)\n");
    for workload in Workload::standard_suite(scale) {
        let mut matrix = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(window).expect("window"),
            StorageBackend::Memory,
            workload.catalog.num_edges(),
        ))
        .expect("matrix");
        let mut mines = 0u64;
        let mut view_words = 0u64;
        let mut snapshot_words = 0u64;
        let mut splice_words = 0u64;
        let mut compact_words = 0u64;
        for batch in &workload.batches {
            let before = matrix.read_stats();
            matrix.ingest_batch(batch).expect("ingest");
            let ingested = matrix.read_stats();
            // Mine-after-slide, zero-copy path: what the view materialises.
            let view = matrix.view().expect("view");
            assert_eq!(view.num_transactions(), matrix.num_transactions());
            let viewed = matrix.read_stats();
            // The demoted eager path over the same window, for comparison.
            let snapshot = matrix.snapshot().expect("snapshot");
            assert_eq!(snapshot.num_transactions(), matrix.num_transactions());
            let snapshotted = matrix.read_stats();

            mines += 1;
            splice_words += ingested.cache_splice_words - before.cache_splice_words;
            compact_words += ingested.cache_compact_words - before.cache_compact_words;
            view_words += viewed.words_assembled - ingested.words_assembled;
            snapshot_words += snapshotted.words_assembled - viewed.words_assembled;
        }
        println!("## {} ({})\n", workload.name, workload.stats());
        println!(
            "{}",
            markdown_table(
                &["read path", "words/mine (measured)", "total words"],
                &[
                    vec![
                        "window view (zero-copy)".to_string(),
                        (view_words / mines.max(1)).to_string(),
                        view_words.to_string(),
                    ],
                    vec![
                        "  + cache splice (at ingest)".to_string(),
                        (splice_words / mines.max(1)).to_string(),
                        splice_words.to_string(),
                    ],
                    vec![
                        "  + cache compaction (amortised)".to_string(),
                        (compact_words / mines.max(1)).to_string(),
                        compact_words.to_string(),
                    ],
                    vec![
                        "eager snapshot (old default)".to_string(),
                        (snapshot_words / mines.max(1)).to_string(),
                        snapshot_words.to_string(),
                    ],
                ]
            )
        );
        let incremental = view_words + splice_words + compact_words;
        let ratio = snapshot_words as f64 / incremental.max(1) as f64;
        println!("read amplification avoided: {ratio:.1}x\n");
    }
}

/// Concurrent ingest + mine section: every slide is frozen as an epoch
/// snapshot ([`StreamMiner::snapshot`]) and mined on a worker thread while
/// ingest keeps appending on the main thread — against the stop-the-world
/// loop that mines after every slide before ingesting the next batch.
///
/// Two claims are *asserted*, not just printed: overlap really happened
/// (slides completed while a mine was in flight, counted via a shared
/// progress counter the worker reads when each mine finishes — summed over
/// the suite, since a fast workload's individual mines can beat the next
/// ingest), and there is no correctness divergence (every
/// concurrently-mined epoch's patterns are identical to the
/// stop-the-world miner's at that epoch).  The table shows
/// the third claim — ingest stall ≈ 0: the writer's per-ingest latency is
/// unchanged by the mining running underneath it, because a snapshot is
/// `Arc`-shared segments, never a copy and never a lock the writer waits on.
fn concurrent_ingest_mine(scale: usize, window: usize) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::{Duration, Instant};

    println!("# Concurrent ingest + mine — epoch snapshots vs stop-the-world\n");
    let mut suite_overlap = 0u64;
    for workload in Workload::standard_suite(scale) {
        let minsup = match workload.kind {
            fsm_bench::WorkloadKind::Dense => MinSup::relative(0.15),
            _ => MinSup::relative(0.03),
        };
        let build = || -> StreamMiner {
            StreamMinerBuilder::new()
                .algorithm(Algorithm::DirectVertical)
                .window_batches(window)
                .min_support(minsup)
                .backend(StorageBackend::DiskTemp)
                .cache_budget_bytes(usize::MAX)
                .catalog(workload.catalog.clone())
                .build()
                .expect("miner")
        };

        // Stop-the-world baseline: ingest waits for every mine.
        let mut sequential = build();
        let mut seq_results = Vec::new();
        let (mut seq_ingest, mut seq_ingest_max) = (Duration::ZERO, Duration::ZERO);
        let seq_start = Instant::now();
        for batch in &workload.batches {
            let t = Instant::now();
            sequential.ingest_batch(batch).expect("ingest");
            let dt = t.elapsed();
            seq_ingest += dt;
            seq_ingest_max = seq_ingest_max.max(dt);
            seq_results.push(sequential.mine().expect("mine"));
        }
        let seq_wall = seq_start.elapsed();

        // Concurrent run: the writer never waits; a worker thread mines
        // every epoch snapshot it is handed.
        let mut concurrent = build();
        let ingested = Arc::new(AtomicU64::new(0));
        let (mut conc_ingest, mut conc_ingest_max) = (Duration::ZERO, Duration::ZERO);
        let conc_start = Instant::now();
        let (mined, overlap) = std::thread::scope(|scope| {
            let (jobs, worker_jobs) = mpsc::channel::<MinerSnapshot>();
            let progress = Arc::clone(&ingested);
            let worker = scope.spawn(move || {
                let mut mined = Vec::new();
                let mut overlap = 0u64;
                for job in worker_jobs {
                    let at_snapshot = job.last_batch_id().map_or(0, |id| id + 1);
                    let result = job.mine().expect("snapshot mine");
                    // Slides the writer completed while this mine ran.
                    overlap += progress.load(Ordering::Relaxed).saturating_sub(at_snapshot);
                    mined.push((job.last_batch_id(), result));
                }
                (mined, overlap)
            });
            for batch in &workload.batches {
                let t = Instant::now();
                concurrent.ingest_batch(batch).expect("ingest");
                let dt = t.elapsed();
                conc_ingest += dt;
                conc_ingest_max = conc_ingest_max.max(dt);
                ingested.fetch_add(1, Ordering::Relaxed);
                jobs.send(concurrent.snapshot().expect("snapshot"))
                    .expect("mining worker alive");
            }
            drop(jobs);
            worker.join().expect("mining worker panicked")
        });
        let conc_wall = conc_start.elapsed();

        // No correctness divergence: every concurrently-mined epoch equals
        // the stop-the-world patterns at that epoch.
        assert_eq!(mined.len(), seq_results.len());
        for (last, result) in &mined {
            let idx = last.expect("every mined epoch has a newest batch") as usize;
            assert!(
                result.same_patterns_as(&seq_results[idx]),
                "{}: concurrent mine diverged at epoch {idx}: {:?}",
                workload.name,
                seq_results[idx].diff(result)
            );
        }
        suite_overlap += overlap;

        let per = |d: Duration| {
            format!(
                "{:.0}",
                d.as_secs_f64() * 1e6 / workload.batches.len().max(1) as f64
            )
        };
        println!("## {} ({})\n", workload.name, workload.stats());
        println!(
            "{}",
            markdown_table(
                &[
                    "mode",
                    "wall ms (stream)",
                    "avg ingest µs",
                    "max ingest µs",
                    "epochs mined"
                ],
                &[
                    vec![
                        "stop-the-world".to_string(),
                        millis(seq_wall),
                        per(seq_ingest),
                        format!("{:.0}", seq_ingest_max.as_secs_f64() * 1e6),
                        seq_results.len().to_string(),
                    ],
                    vec![
                        "concurrent (epoch snapshots)".to_string(),
                        millis(conc_wall),
                        per(conc_ingest),
                        format!("{:.0}", conc_ingest_max.as_secs_f64() * 1e6),
                        mined.len().to_string(),
                    ],
                ]
            )
        );
        let stall = conc_ingest.as_secs_f64() / seq_ingest.as_secs_f64().max(1e-9);
        println!(
            "slides completed while a mine was in flight: {overlap}; \
             every epoch byte-identical to stop-the-world (asserted); \
             ingest stall vs stop-the-world: {stall:.2}x avg\n"
        );
    }
    // A fast workload's mines can individually finish before the next
    // ingest lands, but across the suite the overlap must be real.
    assert!(
        suite_overlap > 0,
        "no slide in the whole suite completed while a mine was in flight"
    );
    println!(
        "suite total: {suite_overlap} slides completed while a mine was in flight (asserted > 0)\n"
    );
}

/// Slide-cost section: words the incremental DSMatrix actually writes per
/// window slide, against what a full-rewrite capture (re-serialising every
/// row on every batch, the pre-segmented implementation) would have written.
///
/// The counters come from [`DsMatrix::capture_stats`], so the table reports
/// measured writes, not a model; only the full-rewrite column is computed
/// (rows x (window words + header) summed over the same slides).
fn slide_cost(scale: usize, window: usize) {
    println!("# Slide cost — words written per window slide (capture path)\n");
    for workload in Workload::standard_suite(scale) {
        let mut matrix = DsMatrix::new(DsMatrixConfig::new(
            WindowConfig::new(window).expect("window"),
            StorageBackend::DiskTemp,
            workload.catalog.num_edges(),
        ))
        .expect("matrix");
        let mut full_rewrite_words = 0u64;
        for batch in &workload.batches {
            matrix.ingest_batch(batch).expect("ingest");
            // What the old capture path would have written for this slide:
            // every row, re-serialised at the new window width.
            let window_words = (matrix.num_transactions().div_ceil(64) + 1) as u64;
            full_rewrite_words += matrix.num_items() as u64 * window_words;
        }
        let stats = matrix.capture_stats();
        let slides = workload.batches.len() as u64;
        println!("## {} ({})\n", workload.name, workload.stats());
        println!(
            "{}",
            markdown_table(
                &[
                    "capture",
                    "words/slide",
                    "rows touched/slide",
                    "total words"
                ],
                &[
                    vec![
                        "incremental (measured)".to_string(),
                        (stats.words_written / slides.max(1)).to_string(),
                        (stats.rows_written / slides.max(1)).to_string(),
                        stats.words_written.to_string(),
                    ],
                    vec![
                        "full rewrite (computed)".to_string(),
                        (full_rewrite_words / slides.max(1)).to_string(),
                        matrix.num_items().to_string(),
                        full_rewrite_words.to_string(),
                    ],
                ]
            )
        );
        let ratio = full_rewrite_words as f64 / stats.words_written.max(1) as f64;
        println!("write amplification avoided: {ratio:.1}x\n");
    }
}

/// Parallel-scaling run: the two vertical algorithms at 1 worker versus
/// `threads` workers over the same captured windows.
///
/// The pattern cap is two deeper than the main table's so that the
/// enumeration (the parallel region) dominates the mining call rather than
/// row loading and post-processing.
fn parallel_scaling(
    scale: usize,
    threads: usize,
    window: usize,
    max_len: Option<usize>,
    repeats: u32,
) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_len = max_len.map(|m| m + 2);
    println!("# Parallel scaling — vertical engines at {threads} threads vs 1\n");
    println!("available cores: {cores}");
    if cores < threads {
        println!(
            "note: only {cores} core(s) visible to this process — speedup is \
             bounded by hardware, not by the engine; re-run on a multi-core \
             host for the real curve"
        );
    }
    println!();
    for workload in Workload::standard_suite(scale) {
        let minsup = match workload.kind {
            fsm_bench::WorkloadKind::Dense => MinSup::relative(0.15),
            _ => MinSup::relative(0.03),
        };
        println!("## {} ({})\n", workload.name, workload.stats());
        let mut rows = Vec::new();
        for algorithm in [Algorithm::Vertical, Algorithm::DirectVertical] {
            let timing = |workers: usize| {
                let mut total = std::time::Duration::ZERO;
                let mut patterns = 0;
                for _ in 0..repeats {
                    let run = run_algorithm_threaded(
                        &workload,
                        algorithm,
                        window,
                        minsup,
                        max_len,
                        StorageBackend::Memory,
                        workers,
                    )
                    .expect("run");
                    total += run.mining_time;
                    patterns = run.patterns;
                }
                (total / repeats, patterns)
            };
            let (sequential, patterns_seq) = timing(1);
            let (parallel, patterns_par) = timing(threads);
            assert_eq!(
                patterns_seq, patterns_par,
                "parallel run must find identical patterns"
            );
            let speedup = sequential.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
            rows.push(vec![
                algorithm.key().to_string(),
                millis(sequential),
                millis(parallel),
                format!("{speedup:.2}x"),
                patterns_par.to_string(),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "miner",
                    "mine ms (1 thread)",
                    &format!("mine ms ({threads} threads)"),
                    "speedup",
                    "patterns"
                ],
                &rows
            )
        );
    }
}
