//! Experiment E4 (§5, "effect of minsup"): runtime decreases as the minimum
//! support threshold increases.

use fsm_bench::report::{markdown_table, millis};
use fsm_bench::{run_algorithm_on, Workload};
use fsm_core::Algorithm;
use fsm_storage::StorageBackend;
use fsm_types::MinSup;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);
    let window = 5;
    let max_len = Some(4);
    let workload = Workload::graph_model(scale, 4242);
    let sweep = [0.01f64, 0.02, 0.05, 0.10, 0.20, 0.40];

    println!("# Experiment E4 — effect of minsup ({})\n", workload.name);
    let mut rows = Vec::new();
    let mut per_algorithm: std::collections::BTreeMap<String, Vec<f64>> = Default::default();

    for &fraction in &sweep {
        for algorithm in [
            Algorithm::Vertical,
            Algorithm::DirectVertical,
            Algorithm::SingleTree,
        ] {
            let run = run_algorithm_on(
                &workload,
                algorithm,
                window,
                MinSup::relative(fraction),
                max_len,
                StorageBackend::DiskTemp,
            )
            .expect("run");
            per_algorithm
                .entry(algorithm.key().to_string())
                .or_default()
                .push(run.mining_time.as_secs_f64());
            rows.push(vec![
                format!("{:.0}%", fraction * 100.0),
                algorithm.key().to_string(),
                millis(run.mining_time),
                run.patterns.to_string(),
            ]);
        }
    }

    println!(
        "{}",
        markdown_table(&["minsup", "algorithm", "mine ms", "patterns"], &rows)
    );

    for (algorithm, timings) in &per_algorithm {
        let decreasing_overall = timings.first().unwrap_or(&0.0) >= timings.last().unwrap_or(&0.0);
        println!(
            "trend check ({algorithm}): runtime at the lowest minsup >= runtime at the highest minsup : {}",
            if decreasing_overall { "holds" } else { "noisy at this scale" }
        );
    }
    println!("\nThe paper reports that runtime decreases when minsup increases; the pattern counts above shrink monotonically with minsup, which drives the runtime trend.");
}
