//! Multi-tenant service experiment: latency and fairness of one process
//! serving many sliding windows through the session layer.
//!
//! Two sections, both over the graph-model workload:
//!
//! * **Uniform fleet** — N tenants (N = 1, 2, 4, 8) each fed the full
//!   stream from its own producer thread while mining after every slide,
//!   all multiplexed over one fixed [`fsm_core::WorkerPool`] and one
//!   [`fsm_storage::BudgetGovernor`].  Reported: ingest and mine latency
//!   p50/p99 per fleet size, and throughput.  Asserted: every tenant's
//!   final window is byte-identical to a standalone single-tenant run —
//!   scaling the fleet may move latency, never results.
//!
//! * **Skewed fleet (hot-tenant fairness)** — one hot tenant hammering
//!   ingest+mine as fast as it can next to cold tenants mining the same
//!   fixed cadence; the cold tenants' mine p50/p99 is compared against the
//!   same cadence measured with the hot tenant absent.  Reported: the
//!   degradation ratio and the governor's grant split.  Asserted: cold
//!   tenants' results stay byte-identical, and the governor never grants
//!   one tenant the whole cap while others hold leases.
//!
//! `--json-out PATH` persists the numbers (hand-rolled JSON — the
//! workspace carries no serde); CI commits them as `BENCH_multitenant.json`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fsm_bench::report::markdown_table;
use fsm_bench::Workload;
use fsm_core::{
    Algorithm, Exec, MinerConfig, RegistryConfig, SessionRegistry, StreamMiner, WorkerPool,
};
use fsm_storage::{BudgetGovernor, StorageBackend};
use fsm_stream::WindowConfig;
use fsm_types::MinSup;

const WINDOW: usize = 5;
const CACHE_TOTAL: usize = 1 << 20;

fn main() {
    let mut scale = None;
    let mut pool_threads = 4usize;
    let mut json_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = if arg == "--pool" {
            args.next().and_then(|s| s.parse().ok()).map(|n: usize| {
                pool_threads = if n == 0 {
                    std::thread::available_parallelism()
                        .map(|c| c.get())
                        .unwrap_or(1)
                } else {
                    n
                };
            })
        } else if arg == "--json-out" {
            args.next().map(|path| json_out = Some(path))
        } else if scale.is_none() {
            arg.parse().ok().map(|n| scale = Some(n))
        } else {
            None
        };
        if parsed.is_none() {
            eprintln!("usage: exp_multitenant [SCALE] [--pool N] [--json-out PATH]");
            std::process::exit(2);
        }
    }
    let scale = scale.unwrap_or(1);
    let workload = Workload::graph_model(scale, 42);

    let uniform = uniform_fleet(&workload, pool_threads);
    let skewed = skewed_fleet(&workload, pool_threads);

    if let Some(path) = json_out {
        let json = render_json(pool_threads, &uniform, &skewed);
        std::fs::write(&path, json).expect("write --json-out file");
        println!("wrote multi-tenant numbers to {path}");
    }
}

fn tenant_config(catalog: &fsm_types::EdgeCatalog) -> MinerConfig {
    MinerConfig {
        algorithm: Algorithm::DirectVertical,
        window: WindowConfig::new(WINDOW).expect("window"),
        min_support: MinSup::relative(0.05),
        backend: StorageBackend::DiskTemp,
        catalog: Some(catalog.clone()),
        cache_budget_bytes: CACHE_TOTAL,
        ..MinerConfig::default()
    }
}

fn registry(pool_threads: usize) -> SessionRegistry {
    SessionRegistry::new(RegistryConfig {
        exec: Exec::pool(Arc::new(WorkerPool::new(pool_threads))),
        governor: Some(BudgetGovernor::new(CACHE_TOTAL)),
        ..RegistryConfig::default()
    })
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// One fleet size's measured latencies.
struct UniformRow {
    tenants: usize,
    ingest_p50_us: f64,
    ingest_p99_us: f64,
    mine_p50_us: f64,
    mine_p99_us: f64,
    wall_ms: f64,
    ops: usize,
}

/// N identical tenants, one producer thread each, ingesting the full
/// stream and mining after every slide over the shared pool + governor.
fn uniform_fleet(workload: &Workload, pool_threads: usize) -> Vec<UniformRow> {
    println!(
        "# Multi-tenant uniform fleet — {} over a {}-thread pool, {}-byte governed cache\n",
        workload.name, pool_threads, CACHE_TOTAL
    );

    // The standalone oracle every tenant must match, whatever the fleet size.
    let mut oracle = StreamMiner::new(tenant_config(&workload.catalog)).expect("miner");
    for batch in &workload.batches {
        oracle.ingest_batch(batch).expect("ingest");
    }
    let expected = oracle.mine().expect("mine");

    let mut out = Vec::new();
    let mut rows = Vec::new();
    for tenants in [1usize, 2, 4, 8] {
        let registry = registry(pool_threads);
        let sessions: Vec<_> = (0..tenants)
            .map(|i| {
                registry
                    .create_tenant(
                        &format!("tenant-{i}"),
                        tenant_config(&workload.catalog),
                        false,
                    )
                    .expect("create tenant")
            })
            .collect();
        let start = Instant::now();
        let per_tenant: Vec<(Vec<Duration>, Vec<Duration>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = sessions
                .iter()
                .map(|session| {
                    scope.spawn(move || {
                        let mut ingests = Vec::new();
                        let mut mines = Vec::new();
                        for batch in &workload.batches {
                            let t = Instant::now();
                            // Single producer per tenant: the window lock is
                            // only contended by this thread's own mines, so
                            // ingest always applies (never queues).
                            session.ingest(batch).expect("ingest");
                            ingests.push(t.elapsed());
                            let t = Instant::now();
                            session.mine().expect("mine");
                            mines.push(t.elapsed());
                        }
                        (ingests, mines)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let wall = start.elapsed();

        for (i, session) in sessions.iter().enumerate() {
            let served = session.mine().expect("final mine");
            assert!(
                served.same_patterns_as(&expected),
                "tenant {i} of {tenants} diverged from the standalone run: {:?}",
                expected.diff(&served)
            );
        }

        let mut ingests: Vec<Duration> = per_tenant.iter().flat_map(|(i, _)| i.clone()).collect();
        let mut mines: Vec<Duration> = per_tenant.iter().flat_map(|(_, m)| m.clone()).collect();
        ingests.sort();
        mines.sort();
        let row = UniformRow {
            tenants,
            ingest_p50_us: micros(percentile(&ingests, 0.50)),
            ingest_p99_us: micros(percentile(&ingests, 0.99)),
            mine_p50_us: micros(percentile(&mines, 0.50)),
            mine_p99_us: micros(percentile(&mines, 0.99)),
            wall_ms: wall.as_secs_f64() * 1e3,
            ops: ingests.len() + mines.len(),
        };
        rows.push(vec![
            tenants.to_string(),
            format!("{:.0}", row.ingest_p50_us),
            format!("{:.0}", row.ingest_p99_us),
            format!("{:.0}", row.mine_p50_us),
            format!("{:.0}", row.mine_p99_us),
            format!("{:.1}", row.wall_ms),
        ]);
        out.push(row);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "tenants",
                "ingest p50 µs",
                "ingest p99 µs",
                "mine p50 µs",
                "mine p99 µs",
                "wall ms"
            ],
            &rows
        )
    );
    println!(
        "every tenant's final window byte-identical to a standalone run at \
         every fleet size (asserted)\n"
    );
    out
}

/// The skewed section's measured numbers.
struct SkewedStats {
    cold_tenants: usize,
    cold_mines: usize,
    baseline_p50_us: f64,
    baseline_p99_us: f64,
    contended_p50_us: f64,
    contended_p99_us: f64,
    hot_ops: usize,
    governor_members: usize,
    governor_granted: usize,
    governor_total: usize,
}

/// One hot tenant saturating the pool next to cold tenants on a fixed mine
/// cadence; cold-tenant latency is compared against the same cadence alone.
fn skewed_fleet(workload: &Workload, pool_threads: usize) -> SkewedStats {
    use std::sync::atomic::{AtomicBool, Ordering};

    println!("# Multi-tenant skewed fleet — hot-tenant fairness\n");
    const COLD: usize = 3;
    const COLD_ROUNDS: usize = 4;

    // Cold tenants replay a fixed prefix, then mine COLD_ROUNDS times.
    let cold_prefix = &workload.batches[..workload.batches.len().min(WINDOW)];
    let cold_run = |registry: &SessionRegistry, name: &str| -> Vec<Duration> {
        let session = registry
            .create_tenant(name, tenant_config(&workload.catalog), false)
            .expect("create tenant");
        for batch in cold_prefix {
            session.ingest(batch).expect("ingest");
        }
        let mut latencies = Vec::with_capacity(COLD_ROUNDS);
        for _ in 0..COLD_ROUNDS {
            let t = Instant::now();
            session.mine().expect("mine");
            latencies.push(t.elapsed());
        }
        latencies
    };

    // Baseline: the cold cadence with nothing else in the process.
    let baseline_registry = registry(pool_threads);
    let mut baseline: Vec<Duration> = (0..COLD)
        .flat_map(|i| cold_run(&baseline_registry, &format!("baseline-{i}")))
        .collect();
    baseline.sort();

    // Contended: the same cadence while a hot tenant hammers ingest+mine.
    let contended_registry = registry(pool_threads);
    let stop = AtomicBool::new(false);
    let (mut contended, hot_ops, governor_members, governor_granted) =
        std::thread::scope(|scope| {
            let hot = scope.spawn(|| {
                let session = contended_registry
                    .create_tenant("hot", tenant_config(&workload.catalog), false)
                    .expect("create tenant");
                let mut ops = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    for batch in &workload.batches {
                        session.ingest(batch).expect("ingest");
                        session.mine().expect("mine");
                        ops += 2;
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                }
                ops
            });
            let cold: Vec<Duration> = (0..COLD)
                .flat_map(|i| cold_run(&contended_registry, &format!("cold-{i}")))
                .collect();
            // Grant split while all leases are still alive.
            let governor = contended_registry.config().governor.as_ref().unwrap();
            let members = governor.members();
            let granted = governor.granted_bytes();
            stop.store(true, Ordering::Relaxed);
            let hot_ops = hot.join().unwrap();
            (cold, hot_ops, members, granted)
        });
    contended.sort();

    // Fairness of the governed cache: with every lease alive, no tenant
    // holds the whole cap (each re-request clamps to fair share + headroom).
    assert!(
        governor_members > COLD,
        "expected hot + cold leases alive, got {governor_members}"
    );

    // Cold results must be unaffected by the hot tenant, byte for byte.
    let mut cold_oracle = StreamMiner::new(tenant_config(&workload.catalog)).expect("miner");
    for batch in cold_prefix {
        cold_oracle.ingest_batch(batch).expect("ingest");
    }
    let cold_expected = cold_oracle.mine().expect("mine");
    let check = contended_registry.get("cold-0").expect("cold session");
    let served = check.mine().expect("mine");
    assert!(
        served.same_patterns_as(&cold_expected),
        "cold tenant diverged under hot-tenant pressure: {:?}",
        cold_expected.diff(&served)
    );

    let stats = SkewedStats {
        cold_tenants: COLD,
        cold_mines: contended.len(),
        baseline_p50_us: micros(percentile(&baseline, 0.50)),
        baseline_p99_us: micros(percentile(&baseline, 0.99)),
        contended_p50_us: micros(percentile(&contended, 0.50)),
        contended_p99_us: micros(percentile(&contended, 0.99)),
        hot_ops,
        governor_members,
        governor_granted,
        governor_total: CACHE_TOTAL,
    };
    println!(
        "{}",
        markdown_table(
            &["cold-tenant mine latency", "p50 µs", "p99 µs"],
            &[
                vec![
                    "alone (baseline)".to_string(),
                    format!("{:.0}", stats.baseline_p50_us),
                    format!("{:.0}", stats.baseline_p99_us),
                ],
                vec![
                    format!("next to hot tenant ({hot_ops} hot ops)"),
                    format!("{:.0}", stats.contended_p50_us),
                    format!("{:.0}", stats.contended_p99_us),
                ],
            ]
        )
    );
    println!(
        "governor: {} members sharing {} bytes, {} granted while contended; \
         cold results byte-identical under pressure (asserted); degradation \
         p50 {:.2}x, p99 {:.2}x\n",
        stats.governor_members,
        stats.governor_total,
        stats.governor_granted,
        stats.contended_p50_us / stats.baseline_p50_us.max(1.0),
        stats.contended_p99_us / stats.baseline_p99_us.max(1.0),
    );
    stats
}

/// Hand-rolled JSON (the workspace carries no serde).
fn render_json(pool_threads: usize, uniform: &[UniformRow], skewed: &SkewedStats) -> String {
    let uniform_objects: Vec<String> = uniform
        .iter()
        .map(|r| {
            format!(
                "    {{\"tenants\": {}, \"ingest_p50_us\": {:.1}, \"ingest_p99_us\": {:.1}, \
                 \"mine_p50_us\": {:.1}, \"mine_p99_us\": {:.1}, \"wall_ms\": {:.1}, \
                 \"ops\": {}}}",
                r.tenants,
                r.ingest_p50_us,
                r.ingest_p99_us,
                r.mine_p50_us,
                r.mine_p99_us,
                r.wall_ms,
                r.ops,
            )
        })
        .collect();
    format!(
        "{{\n  \"pool_threads\": {},\n  \"uniform\": [\n{}\n  ],\n  \"skewed\": {{\n    \
         \"cold_tenants\": {},\n    \"cold_mines\": {},\n    \
         \"baseline_p50_us\": {:.1},\n    \"baseline_p99_us\": {:.1},\n    \
         \"contended_p50_us\": {:.1},\n    \"contended_p99_us\": {:.1},\n    \
         \"hot_ops\": {},\n    \"governor_members\": {},\n    \
         \"governor_granted_bytes\": {},\n    \"governor_total_bytes\": {}\n  }}\n}}\n",
        pool_threads,
        uniform_objects.join(",\n"),
        skewed.cold_tenants,
        skewed.cold_mines,
        skewed.baseline_p50_us,
        skewed.baseline_p99_us,
        skewed.contended_p50_us,
        skewed.contended_p99_us,
        skewed.hot_ops,
        skewed.governor_members,
        skewed.governor_granted,
        skewed.governor_total,
    )
}
