//! Ablation A3: effect of the window size `w` on capture and mining cost.
//!
//! The paper fixes `w = 5`; this ablation sweeps `w` to show how the DSMatrix
//! footprint and the mining time scale with the amount of history retained.

use fsm_bench::report::{human_bytes, markdown_table, millis};
use fsm_bench::{run_algorithm_on, Workload};
use fsm_core::Algorithm;
use fsm_storage::StorageBackend;
use fsm_types::MinSup;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);
    let workload = Workload::graph_model(scale, 31337);
    let sweep = [1usize, 2, 4, 6, 8];

    println!(
        "# Ablation A3 — effect of the window size w ({})\n",
        workload.name
    );
    let mut rows = Vec::new();
    for &w in &sweep {
        for algorithm in [Algorithm::DirectVertical, Algorithm::SingleTree] {
            let run = run_algorithm_on(
                &workload,
                algorithm,
                w,
                MinSup::relative(0.03),
                Some(4),
                StorageBackend::DiskTemp,
            )
            .expect("run");
            rows.push(vec![
                w.to_string(),
                algorithm.key().to_string(),
                millis(run.mining_time),
                human_bytes(run.capture_on_disk_bytes),
                human_bytes(run.peak_mining_bytes as u64),
                run.patterns.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "w (batches)",
                "algorithm",
                "mine ms",
                "matrix on disk",
                "peak mining working set",
                "patterns"
            ],
            &rows
        )
    );
    println!("Both the on-disk matrix size and the mining time grow with the window, linearly in the number of retained transactions.");
}
