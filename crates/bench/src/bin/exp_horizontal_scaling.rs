//! Parallel scaling of the horizontal (FP-tree) algorithms.
//!
//! Companion to the vertical-scaling section of `exp3_runtime`: the three
//! horizontal miners fan their per-pivot projected databases over the same
//! worker pool as the vertical miners fan their subtrees, so this binary
//! reports mine time at 1 worker versus `--threads N` workers (default 4,
//! `0` = all cores) for `multi-tree`, `single-tree` and `top-down`, and
//! asserts that both runs find identical patterns.
//!
//! Like the vertical section, the numbers are hardware-bound: on a host that
//! exposes a single core the speedup column reads ~1.0x by construction, and
//! the binary says so rather than pretending otherwise.

use fsm_bench::report::{markdown_table, millis};
use fsm_bench::{run_algorithm_threaded, Workload};
use fsm_core::Algorithm;
use fsm_storage::StorageBackend;
use fsm_types::MinSup;

fn main() {
    let mut scale = None;
    let mut threads = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = if arg == "--threads" {
            args.next().and_then(|s| s.parse().ok()).map(|n| {
                threads = if n == 0 {
                    std::thread::available_parallelism()
                        .map(|c| c.get())
                        .unwrap_or(1)
                } else {
                    n
                };
            })
        } else if scale.is_none() {
            arg.parse().ok().map(|n| scale = Some(n))
        } else {
            None
        };
        if parsed.is_none() {
            eprintln!("usage: exp_horizontal_scaling [SCALE] [--threads N]");
            std::process::exit(2);
        }
    }
    let scale = scale.unwrap_or(1);
    let window = 5;
    let max_len = Some(4);
    let repeats = 3u32;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("# Horizontal scaling — FP-tree miners at {threads} threads vs 1\n");
    println!("available cores: {cores}");
    if cores < threads {
        println!(
            "note: only {cores} core(s) visible to this process — speedup is \
             bounded by hardware, not by the engine; re-run on a multi-core \
             host for the real curve"
        );
    }
    println!();

    for workload in Workload::standard_suite(scale) {
        let minsup = match workload.kind {
            fsm_bench::WorkloadKind::Dense => MinSup::relative(0.15),
            _ => MinSup::relative(0.03),
        };
        println!("## {} ({})\n", workload.name, workload.stats());
        let mut rows = Vec::new();
        for algorithm in [
            Algorithm::MultiTree,
            Algorithm::SingleTree,
            Algorithm::TopDown,
        ] {
            let timing = |workers: usize| {
                let mut total = std::time::Duration::ZERO;
                let mut patterns = 0;
                for _ in 0..repeats {
                    let run = run_algorithm_threaded(
                        &workload,
                        algorithm,
                        window,
                        minsup,
                        max_len,
                        StorageBackend::Memory,
                        workers,
                    )
                    .expect("run");
                    total += run.mining_time;
                    patterns = run.patterns;
                }
                (total / repeats, patterns)
            };
            let (sequential, patterns_seq) = timing(1);
            let (parallel, patterns_par) = timing(threads);
            assert_eq!(
                patterns_seq, patterns_par,
                "parallel run must find identical patterns"
            );
            let speedup = sequential.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
            rows.push(vec![
                algorithm.key().to_string(),
                millis(sequential),
                millis(parallel),
                format!("{speedup:.2}x"),
                patterns_par.to_string(),
            ]);
        }
        println!(
            "{}",
            markdown_table(
                &[
                    "miner",
                    "mine ms (1 thread)",
                    &format!("mine ms ({threads} threads)"),
                    "speedup",
                    "patterns"
                ],
                &rows
            )
        );
    }
}
