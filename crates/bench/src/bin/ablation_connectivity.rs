//! Ablation A4: the §3.5 vertex-frequency connectivity rule versus the exact
//! union–find check.
//!
//! The paper's rule is a necessary condition only: collections made of two
//! edge groups that each touch a shared-degree vertex (e.g. two disjoint
//! triangles) slip through.  This ablation measures how often that happens on
//! generated streams and what it costs to be exact.

use std::time::Instant;

use fsm_bench::report::{markdown_table, millis};
use fsm_bench::Workload;
use fsm_core::{oracle, ConnectivityMode};
use fsm_types::MinSup;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);
    let window = 5;
    let max_len = Some(5);

    println!("# Ablation A4 — §3.5 rule vs exact union–find connectivity\n");
    let mut rows = Vec::new();

    for workload in [
        Workload::graph_model(scale, 2024),
        Workload::quest(scale, 2025),
    ] {
        let minsup = MinSup::relative(0.03);
        // Mine all frequent collections once, then apply both filters.
        let start_window = workload.batches.len().saturating_sub(window);
        let transactions: Vec<fsm_types::Transaction> = workload.batches[start_window..]
            .iter()
            .flat_map(|b| b.transactions().iter().cloned())
            .collect();
        let resolved = minsup.resolve(transactions.len());
        let all = oracle::mine_oracle(&transactions, resolved, max_len);

        let time_filter = |mode: ConnectivityMode| {
            let checker = fsm_core::ConnectivityChecker::new(&workload.catalog, mode);
            let mut patterns = all.clone();
            let start = Instant::now();
            let pruned = checker.prune_disconnected(&mut patterns);
            (start.elapsed(), pruned, patterns.len())
        };
        let (exact_time, exact_pruned, exact_kept) = time_filter(ConnectivityMode::Exact);
        let (rule_time, rule_pruned, rule_kept) = time_filter(ConnectivityMode::PaperRule);

        rows.push(vec![
            workload.name.clone(),
            all.len().to_string(),
            format!(
                "{exact_kept} (pruned {exact_pruned}, {} ms)",
                millis(exact_time)
            ),
            format!(
                "{rule_kept} (pruned {rule_pruned}, {} ms)",
                millis(rule_time)
            ),
            (rule_kept - exact_kept).to_string(),
        ]);
    }

    println!(
        "{}",
        markdown_table(
            &[
                "workload",
                "frequent collections",
                "exact filter kept",
                "§3.5 rule kept",
                "false connected (rule only)"
            ],
            &rows
        )
    );
    println!("On edge-pair patterns the two filters agree (as in the paper's running example); differences only appear on larger collections containing two dense but mutually disjoint groups.");
}
