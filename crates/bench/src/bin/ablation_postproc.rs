//! Ablation A1: the cost of post-processing versus direct pruning as the
//! number of vertices (and hence the chance of disjoint edges) grows.
//!
//! §4 motivates the direct algorithm with exactly this effect: "when the
//! number of vertices increases, chances of having disjoint edges also
//! increase", so more and more of the post-processing algorithms' work is
//! wasted on collections that are pruned afterwards.

use fsm_bench::report::{markdown_table, millis};
use fsm_core::{Algorithm, StreamMinerBuilder};
use fsm_datagen::{GraphModel, GraphModelConfig, GraphStreamConfig, GraphStreamGenerator};
use fsm_storage::StorageBackend;
use fsm_types::MinSup;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);
    let vertex_sweep = [8u32, 16, 24, 32];

    println!("# Ablation A1 — post-processing vs direct pruning as |V| grows\n");
    let mut rows = Vec::new();

    for &vertices in &vertex_sweep {
        let model = GraphModel::generate(GraphModelConfig {
            num_vertices: vertices,
            avg_fanout: 4.0,
            seed: 5150,
            ..GraphModelConfig::default()
        });
        let catalog = model.catalog().clone();
        let mut generator = GraphStreamGenerator::new(
            model,
            GraphStreamConfig {
                avg_edges_per_graph: 6.0,
                locality: 0.4, // lower locality ⇒ more disjoint co-occurrence
                batch_size: 150 * scale,
                seed: 5150,
            },
        );
        let batches = generator.generate_batches(6);

        for algorithm in [Algorithm::Vertical, Algorithm::DirectVertical] {
            let mut miner = StreamMinerBuilder::new()
                .algorithm(algorithm)
                .window_batches(5)
                .min_support(MinSup::relative(0.03))
                .max_pattern_len(4)
                .backend(StorageBackend::Memory)
                .catalog(catalog.clone())
                .build()
                .expect("miner");
            for batch in &batches {
                miner.ingest_batch(batch).expect("ingest");
            }
            let result = miner.mine().expect("mine");
            let stats = result.stats();
            rows.push(vec![
                vertices.to_string(),
                algorithm.key().to_string(),
                millis(stats.elapsed),
                stats.intersections.to_string(),
                stats.patterns_before_postprocess.to_string(),
                stats.patterns_pruned.to_string(),
                result.len().to_string(),
            ]);
        }
    }

    println!(
        "{}",
        markdown_table(
            &[
                "|V|",
                "algorithm",
                "mine ms",
                "intersections",
                "patterns before filter",
                "pruned",
                "connected patterns"
            ],
            &rows
        )
    );
    println!("As |V| grows the vertical algorithm wastes more intersections on collections that the §3.5 filter later discards, while the direct algorithm's intersection count tracks only the connected collections — the effect §4 argues for.");
}
