//! Experiment E2 (§5, second experiment): space efficiency.
//!
//! Expected ordering (paper):
//!   memory(DSTree mining) > memory(multi-tree) > memory(single-tree ≈
//!   top-down) > memory(vertical ≈ direct),
//! with the DSTable and DSMatrix keeping their capture payload on disk while
//! the DSTree keeps everything in memory.

use fsm_bench::report::{human_bytes, markdown_table};
use fsm_bench::{run_algorithm_on, run_baselines_on, Workload};
use fsm_core::Algorithm;
use fsm_storage::StorageBackend;
use fsm_types::MinSup;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);
    let window = 5;
    let max_len = Some(4);

    println!("# Experiment E2 — space efficiency\n");

    for workload in Workload::standard_suite(scale) {
        let minsup = match workload.kind {
            fsm_bench::WorkloadKind::Dense => MinSup::relative(0.15),
            _ => MinSup::relative(0.03),
        };
        println!("## {} ({})\n", workload.name, workload.stats());
        let mut rows = Vec::new();
        let mut peaks = std::collections::BTreeMap::new();

        for run in run_baselines_on(&workload, window, minsup, max_len).expect("baselines") {
            peaks.insert(run.label.clone(), run.peak_mining_bytes);
            rows.push(vec![
                run.label.clone(),
                human_bytes(run.capture_resident_bytes as u64),
                human_bytes(run.capture_on_disk_bytes),
                human_bytes(run.peak_mining_bytes as u64),
                run.patterns.to_string(),
            ]);
        }
        for algorithm in Algorithm::ALL {
            let run = run_algorithm_on(
                &workload,
                algorithm,
                window,
                minsup,
                max_len,
                StorageBackend::DiskTemp,
            )
            .expect("run");
            peaks.insert(run.label.clone(), run.peak_mining_bytes);
            rows.push(vec![
                run.label.clone(),
                human_bytes(run.capture_resident_bytes as u64),
                human_bytes(run.capture_on_disk_bytes),
                human_bytes(run.peak_mining_bytes as u64),
                run.patterns.to_string(),
            ]);
        }

        println!(
            "{}",
            markdown_table(
                &[
                    "miner",
                    "capture resident",
                    "capture on disk",
                    "peak mining working set",
                    "patterns"
                ],
                &rows
            )
        );

        // Check the paper's ordering claims on the mining working set.
        let get = |k: &str| peaks.get(k).copied().unwrap_or(0);
        let multi = get("multi-tree");
        let single = get("single-tree").max(get("top-down"));
        let vertical = get("vertical").max(get("direct-vertical"));
        println!(
            "ordering check: multi-tree ({}) >= single-tree/top-down ({}) >= vertical/direct ({}) : {}\n",
            human_bytes(multi as u64),
            human_bytes(single as u64),
            human_bytes(vertical as u64),
            if multi >= single && single >= vertical {
                "holds"
            } else {
                "VIOLATED"
            }
        );
    }
}
