//! Experiment E5 (§5, "scalability with the number of batches"): capture and
//! mining cost as the stream grows longer while the window stays fixed.

use fsm_bench::report::{markdown_table, millis};
use fsm_bench::workloads::path_catalog;
use fsm_core::{Algorithm, StreamMinerBuilder};
use fsm_datagen::{QuestConfig, QuestGenerator};
use fsm_storage::StorageBackend;
use fsm_types::MinSup;
use std::time::Instant;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);
    let window = 5;
    let batch_size = 200 * scale;
    let sweep = [5usize, 10, 20, 40];
    let num_items = 60u32;

    println!("# Experiment E5 — scalability with the number of batches\n");
    println!("window = {window} batches, batch size = {batch_size} transactions\n");

    let mut rows = Vec::new();
    for &num_batches in &sweep {
        let mut generator = QuestGenerator::new(QuestConfig {
            num_items,
            avg_transaction_len: 8.0,
            seed: 99,
            ..QuestConfig::default()
        });
        let batches = generator.generate_batches(num_batches, batch_size);

        for algorithm in [Algorithm::Vertical, Algorithm::DirectVertical] {
            let mut miner = StreamMinerBuilder::new()
                .algorithm(algorithm)
                .window_batches(window)
                .min_support(MinSup::relative(0.03))
                .max_pattern_len(4)
                .backend(StorageBackend::DiskTemp)
                .catalog(path_catalog(num_items))
                .build()
                .expect("miner");
            let capture_start = Instant::now();
            for batch in &batches {
                miner.ingest_batch(batch).expect("ingest");
            }
            let capture = capture_start.elapsed();
            let result = miner.mine().expect("mine");
            rows.push(vec![
                num_batches.to_string(),
                algorithm.key().to_string(),
                millis(capture),
                millis(capture / num_batches as u32),
                millis(result.stats().elapsed),
                result.len().to_string(),
            ]);
        }
    }

    println!(
        "{}",
        markdown_table(
            &[
                "stream batches",
                "algorithm",
                "total capture ms",
                "capture ms / batch",
                "mine ms (final window)",
                "patterns"
            ],
            &rows
        )
    );
    println!("The per-batch capture cost and the final-window mining cost stay flat as the stream grows — the scalability property the paper reports for its (five) algorithms, especially the two vertical ones.");
}
