//! Tenant-density experiment: how many tenants one process can hold when
//! the resident-set policy keeps only a fixed number of windows in memory.
//!
//! A fleet of [`TENANTS`] identical tenants is driven round-robin through
//! one [`fsm_core::SessionRegistry`] capped at [`MAX_RESIDENT`] resident
//! windows; colder tenants spill to a throwaway root and thaw
//! transparently when the rotation returns to them.  After every touch the
//! registry is sampled, tracking the peak resident count and the peak
//! summed resident bytes the cap actually allowed.
//!
//! Asserted (the experiment fails loudly, it does not just report):
//!
//! * the resident count never exceeds the cap — density is real, the
//!   registry is not quietly keeping the whole fleet in memory;
//! * every tenant's final window is byte-identical to a standalone
//!   single-tenant run — spill/thaw cycling may move bytes, never results.
//!
//! Reported: peak resident count/bytes, the estimated bytes a fully
//! resident fleet would have needed, total thaws and thaw-latency p50/p99.
//! `--json-out PATH` persists the numbers (hand-rolled JSON — the
//! workspace carries no serde); CI commits them as `BENCH_density.json`.

use std::time::Instant;

use fsm_bench::report::markdown_table;
use fsm_bench::Workload;
use fsm_core::{
    Algorithm, LifecycleState, MinerConfig, RegistryConfig, SessionRegistry, StreamMiner,
};
use fsm_storage::{StorageBackend, TempDir};
use fsm_stream::WindowConfig;
use fsm_types::MinSup;

const TENANTS: usize = 64;
const MAX_RESIDENT: usize = 8;
const WINDOW: usize = 5;

fn main() {
    let mut scale = None;
    let mut json_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parsed = if arg == "--json-out" {
            args.next().map(|path| json_out = Some(path))
        } else if scale.is_none() {
            arg.parse().ok().map(|n| scale = Some(n))
        } else {
            None
        };
        if parsed.is_none() {
            eprintln!("usage: exp_density [SCALE] [--json-out PATH]");
            std::process::exit(2);
        }
    }
    let scale = scale.unwrap_or(1);
    let workload = Workload::graph_model(scale, 42);

    let stats = density_run(&workload);

    if let Some(path) = json_out {
        std::fs::write(&path, render_json(&stats)).expect("write --json-out file");
        println!("wrote density numbers to {path}");
    }
}

fn tenant_config(catalog: &fsm_types::EdgeCatalog) -> MinerConfig {
    MinerConfig {
        algorithm: Algorithm::DirectVertical,
        window: WindowConfig::new(WINDOW).expect("window"),
        min_support: MinSup::relative(0.05),
        backend: StorageBackend::Memory,
        catalog: Some(catalog.clone()),
        ..MinerConfig::default()
    }
}

/// The density run's measured numbers.
struct DensityStats {
    peak_resident: usize,
    peak_resident_bytes: u64,
    full_fleet_bytes_estimate: u64,
    total_thaws: u64,
    thaw_p50_us: f64,
    thaw_p99_us: f64,
    wall_ms: f64,
}

fn density_run(workload: &Workload) -> DensityStats {
    println!(
        "# Tenant density — {} tenants, {} resident windows, {} stream\n",
        TENANTS, MAX_RESIDENT, workload.name
    );

    let spill_root = TempDir::new("exp-density-spill").expect("spill root");
    let registry = SessionRegistry::new(RegistryConfig {
        max_resident: Some(MAX_RESIDENT),
        spill_root: Some(spill_root.path().into()),
        ..RegistryConfig::default()
    });
    let sessions: Vec<_> = (0..TENANTS)
        .map(|i| {
            registry
                .create_tenant(
                    &format!("tenant-{i:02}"),
                    tenant_config(&workload.catalog),
                    false,
                )
                .expect("create tenant")
        })
        .collect();

    // Round-robin drive: each batch visits every tenant before the next
    // batch starts, so all but MAX_RESIDENT tenants are cold at each visit
    // and the rotation forces a thaw almost every touch.
    let mut peak_resident = 0usize;
    let mut peak_resident_bytes = 0u64;
    let start = Instant::now();
    for batch in &workload.batches {
        for session in &sessions {
            session.ingest(batch).expect("ingest");
            let statuses = registry.statuses();
            let resident = statuses
                .iter()
                .filter(|(_, s)| s.state != LifecycleState::Spilled)
                .count();
            let bytes: u64 = statuses.iter().map(|(_, s)| s.resident_bytes).sum();
            peak_resident = peak_resident.max(resident);
            peak_resident_bytes = peak_resident_bytes.max(bytes);
        }
    }
    let wall = start.elapsed();

    assert!(
        peak_resident <= MAX_RESIDENT,
        "resident-set cap violated: {peak_resident} windows resident under \
         a cap of {MAX_RESIDENT}"
    );

    // Correctness across the whole fleet: every tenant's final window must
    // equal a standalone run of the stream, whatever spill/thaw history it
    // accumulated.
    let mut oracle = StreamMiner::new(tenant_config(&workload.catalog)).expect("miner");
    for batch in &workload.batches {
        oracle.ingest_batch(batch).expect("ingest");
    }
    let expected = oracle.mine().expect("mine");
    for (i, session) in sessions.iter().enumerate() {
        let served = session.mine().expect("final mine");
        assert!(
            served.same_patterns_as(&expected),
            "tenant {i} diverged after spill/thaw cycling: {:?}",
            expected.diff(&served)
        );
    }

    // Thaw statistics over the whole fleet.
    let mut latencies: Vec<u64> = sessions
        .iter()
        .flat_map(|session| session.thaw_latencies())
        .collect();
    latencies.sort_unstable();
    let total_thaws: u64 = registry.statuses().iter().map(|(_, s)| s.thaws).sum();
    let p = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let rank = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[rank.min(latencies.len() - 1)] as f64 / 1e3
    };
    let per_resident = peak_resident_bytes / peak_resident.max(1) as u64;
    let stats = DensityStats {
        peak_resident,
        peak_resident_bytes,
        full_fleet_bytes_estimate: per_resident * TENANTS as u64,
        total_thaws,
        thaw_p50_us: p(0.50),
        thaw_p99_us: p(0.99),
        wall_ms: wall.as_secs_f64() * 1e3,
    };

    println!(
        "{}",
        markdown_table(
            &["metric", "value"],
            &[
                vec!["tenants".into(), TENANTS.to_string()],
                vec!["resident cap".into(), MAX_RESIDENT.to_string()],
                vec![
                    "peak resident windows".into(),
                    stats.peak_resident.to_string()
                ],
                vec![
                    "peak resident bytes".into(),
                    stats.peak_resident_bytes.to_string()
                ],
                vec![
                    "fully-resident fleet estimate".into(),
                    stats.full_fleet_bytes_estimate.to_string()
                ],
                vec!["total thaws".into(), stats.total_thaws.to_string()],
                vec!["thaw p50 µs".into(), format!("{:.0}", stats.thaw_p50_us)],
                vec!["thaw p99 µs".into(), format!("{:.0}", stats.thaw_p99_us)],
                vec!["wall ms".into(), format!("{:.1}", stats.wall_ms)],
            ]
        )
    );
    println!(
        "resident set stayed within the cap and all {TENANTS} tenants served \
         byte-identical windows (asserted)\n"
    );
    stats
}

/// Hand-rolled JSON (the workspace carries no serde).
fn render_json(stats: &DensityStats) -> String {
    format!(
        "{{\n  \"tenants\": {},\n  \"max_resident\": {},\n  \
         \"peak_resident\": {},\n  \"peak_resident_bytes\": {},\n  \
         \"full_fleet_bytes_estimate\": {},\n  \"total_thaws\": {},\n  \
         \"thaw_p50_us\": {:.1},\n  \"thaw_p99_us\": {:.1},\n  \
         \"wall_ms\": {:.1}\n}}\n",
        TENANTS,
        MAX_RESIDENT,
        stats.peak_resident,
        stats.peak_resident_bytes,
        stats.full_fleet_bytes_estimate,
        stats.total_thaws,
        stats.thaw_p50_us,
        stats.thaw_p99_us,
        stats.wall_ms,
    )
}
