//! Experiment E1 (§5, first experiment): accuracy.
//!
//! "The four mining algorithms that use the DSMatrix with the post-processing
//! steps gave the same mining results as the direct algorithm … these five
//! algorithms gave the same mining results as any algorithms that conduct
//! mining with the DSTree or DSTable."
//!
//! The binary runs all five DSMatrix algorithms plus the DSTree and DSTable
//! baselines on every standard workload and checks that every pair of result
//! sets is identical.

use fsm_bench::report::markdown_table;
use fsm_bench::{run_algorithm_on, run_baselines_on, Workload};
use fsm_core::Algorithm;
use fsm_storage::StorageBackend;
use fsm_types::MinSup;

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);
    let window = 5;
    let max_len = Some(4);

    println!("# Experiment E1 — accuracy (all algorithms agree)\n");
    let mut rows = Vec::new();
    let mut all_agree = true;

    for workload in Workload::standard_suite(scale) {
        let minsup = match workload.kind {
            fsm_bench::WorkloadKind::Dense => MinSup::relative(0.15),
            _ => MinSup::relative(0.03),
        };
        let mut runs = Vec::new();
        for algorithm in Algorithm::ALL {
            runs.push(
                run_algorithm_on(
                    &workload,
                    algorithm,
                    window,
                    minsup,
                    max_len,
                    StorageBackend::DiskTemp,
                )
                .expect("run"),
            );
        }
        runs.extend(run_baselines_on(&workload, window, minsup, max_len).expect("baselines"));

        let reference = &runs[0];
        for run in &runs {
            let agrees = reference.result.same_patterns_as(&run.result);
            all_agree &= agrees;
            rows.push(vec![
                workload.name.clone(),
                run.label.clone(),
                run.patterns.to_string(),
                if agrees { "yes".into() } else { "NO".into() },
            ]);
            if !agrees {
                eprintln!(
                    "MISMATCH on {} for {}: {:?}",
                    workload.name,
                    run.label,
                    reference.result.diff(&run.result)
                );
            }
        }
    }

    println!(
        "{}",
        markdown_table(
            &[
                "workload",
                "miner",
                "connected patterns",
                "matches reference"
            ],
            &rows
        )
    );
    if all_agree {
        println!("RESULT: all seven miners returned identical frequent connected subgraphs, reproducing the paper's accuracy claim.");
    } else {
        println!("RESULT: MISMATCH DETECTED — see stderr.");
        std::process::exit(1);
    }
}
