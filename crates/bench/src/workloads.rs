//! The standard workloads of the experiment suite.
//!
//! Three families mirror the data sources of §5:
//!
//! * `GraphModel` — streams sampled from a random graph model (the paper's
//!   Java generator substitute), moderately sparse, connected co-occurrence;
//! * `Quest` — IBM-Quest-style market-basket streams, sparse and clustered;
//! * `Dense` — connect4-like dense streams.
//!
//! Each workload fixes a seed, so every experiment binary measures the exact
//! same stream.  The `scale` knob shrinks the stream for smoke runs while
//! preserving its shape.

use fsm_datagen::{
    DenseGenerator, GraphModel, GraphModelConfig, GraphStreamConfig, GraphStreamGenerator,
    QuestConfig, QuestGenerator,
};
use fsm_stream::StreamStats;
use fsm_types::{Batch, EdgeCatalog, EdgeId, VertexId};

/// Which generator a workload comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Random-graph-model stream (sparse, connected co-occurrence).
    GraphModel,
    /// IBM-Quest-style stream (sparse, clustered itemsets).
    Quest,
    /// connect4-like dense stream.
    Dense,
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadKind::GraphModel => f.write_str("graph-model"),
            WorkloadKind::Quest => f.write_str("quest"),
            WorkloadKind::Dense => f.write_str("dense"),
        }
    }
}

/// A fully materialised workload: the stream plus the edge catalog it is
/// drawn over.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Human-readable name used in reports.
    pub name: String,
    /// Which family the workload belongs to.
    pub kind: WorkloadKind,
    /// Edge vocabulary (used for connectivity decisions).
    pub catalog: EdgeCatalog,
    /// The batches of the stream, in arrival order.
    pub batches: Vec<Batch>,
}

impl Workload {
    /// Stream of graph transactions drawn from a random graph model.
    pub fn graph_model(scale: usize, seed: u64) -> Self {
        let model = GraphModel::generate(GraphModelConfig {
            num_vertices: 24,
            avg_fanout: 5.0,
            centrality_skew: 0.8,
            seed,
            ..GraphModelConfig::default()
        });
        let catalog = model.catalog().clone();
        let mut generator = GraphStreamGenerator::new(
            model,
            GraphStreamConfig {
                avg_edges_per_graph: 6.0,
                locality: 0.75,
                batch_size: 150 * scale.max(1),
                seed,
            },
        );
        let batches = generator.generate_batches(8);
        Self {
            name: format!("graph-model(x{scale})"),
            kind: WorkloadKind::GraphModel,
            catalog,
            batches,
        }
    }

    /// IBM-Quest-style stream.  The item universe is mapped onto a synthetic
    /// edge catalog (a long path graph) so connectivity is meaningful.
    pub fn quest(scale: usize, seed: u64) -> Self {
        let num_items = 60u32;
        let mut generator = QuestGenerator::new(QuestConfig {
            num_items,
            avg_transaction_len: 8.0,
            avg_pattern_len: 4.0,
            num_patterns: 30,
            corruption: 0.25,
            seed,
        });
        let batch_size = 150 * scale.max(1);
        let batches = generator.generate_batches(8, batch_size);
        Self {
            name: format!("quest(x{scale})"),
            kind: WorkloadKind::Quest,
            catalog: path_catalog(num_items),
            batches,
        }
    }

    /// connect4-like dense stream (scaled down from 67 557 records; density
    /// and the 130-item domain are preserved).
    pub fn dense(scale: usize, seed: u64) -> Self {
        let generator = DenseGenerator {
            num_items: 130,
            avg_transaction_len: 43.0,
            num_blocks: 8,
            seed,
        };
        let batch_size = 60 * scale.max(1);
        let batches = generator.generate_batches(8, batch_size);
        Self {
            name: format!("dense-connect4(x{scale})"),
            kind: WorkloadKind::Dense,
            catalog: path_catalog(130),
            batches,
        }
    }

    /// The standard trio used by most experiments.
    pub fn standard_suite(scale: usize) -> Vec<Workload> {
        vec![
            Self::graph_model(scale, 1001),
            Self::quest(scale, 1002),
            Self::dense(scale, 1003),
        ]
    }

    /// Stream statistics (for workload characterisation tables).
    pub fn stats(&self) -> StreamStats {
        let mut stats = StreamStats::new();
        stats.observe_all(self.batches.iter());
        stats
    }

    /// Total number of transactions in the stream.
    pub fn total_transactions(&self) -> usize {
        self.batches.iter().map(Batch::len).sum()
    }
}

/// Maps an item universe onto a path graph: item `i` becomes the edge
/// `(v_{i+1}, v_{i+2})`, so consecutive items are adjacent edges.  This keeps
/// itemset workloads (Quest, dense) usable for *connected* subgraph mining
/// without changing their co-occurrence structure.
pub fn path_catalog(num_items: u32) -> EdgeCatalog {
    let mut catalog = EdgeCatalog::new();
    for i in 0..num_items {
        let id = catalog.intern(VertexId::new(i + 1), VertexId::new(i + 2));
        debug_assert_eq!(id, EdgeId::new(i));
    }
    catalog
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_produces_three_distinct_workloads() {
        let suite = Workload::standard_suite(1);
        assert_eq!(suite.len(), 3);
        assert!(suite.iter().all(|w| !w.batches.is_empty()));
        assert!(suite[2].stats().density() > suite[1].stats().density());
    }

    #[test]
    fn path_catalog_makes_consecutive_items_adjacent() {
        let catalog = path_catalog(5);
        assert_eq!(catalog.num_edges(), 5);
        assert!(catalog.are_adjacent(EdgeId::new(0), EdgeId::new(1)));
        assert!(!catalog.are_adjacent(EdgeId::new(0), EdgeId::new(2)));
    }

    #[test]
    fn scaling_grows_the_stream() {
        let small = Workload::quest(1, 7);
        let large = Workload::quest(2, 7);
        assert!(large.total_transactions() > small.total_transactions());
    }
}
