//! Running algorithms and baselines over workloads with uniform measurement.

use std::time::{Duration, Instant};

use fsm_core::{
    mine_dstable, mine_dstree, Algorithm, ConnectivityMode, MiningResult, StreamMinerBuilder,
};
use fsm_dstable::{DsTable, DsTableConfig};
use fsm_dstree::{DsTree, DsTreeConfig};
use fsm_fptree::MiningLimits;
use fsm_storage::StorageBackend;
use fsm_stream::WindowConfig;
use fsm_types::{MinSup, Result};

use crate::workloads::Workload;

/// Measurements of one algorithm run over one workload.
#[derive(Debug, Clone)]
pub struct AlgorithmRun {
    /// Label of the runner ("multi-tree", "dstree-baseline", …).
    pub label: String,
    /// Capture time: ingesting every batch of the stream.
    pub capture_time: Duration,
    /// Mining time of the final window.
    pub mining_time: Duration,
    /// Number of connected collections found.
    pub patterns: usize,
    /// Collections found before the connectivity filter.
    pub patterns_before_postprocess: usize,
    /// Peak bytes of the mining working set (trees or bit vectors).
    pub peak_mining_bytes: usize,
    /// Resident bytes of the capture structure at mining time.
    pub capture_resident_bytes: usize,
    /// On-disk bytes of the capture structure at mining time.
    pub capture_on_disk_bytes: u64,
    /// The mining result itself (for accuracy comparisons).
    pub result: MiningResult,
}

/// Runs one of the five DSMatrix algorithms over a workload (sequentially;
/// see [`run_algorithm_threaded`] for the parallel engine).
pub fn run_algorithm_on(
    workload: &Workload,
    algorithm: Algorithm,
    window: usize,
    minsup: MinSup,
    max_len: Option<usize>,
    backend: StorageBackend,
) -> Result<AlgorithmRun> {
    run_algorithm_threaded(workload, algorithm, window, minsup, max_len, backend, 1)
}

/// Runs one of the five DSMatrix algorithms over a workload with an explicit
/// worker-thread count for the vertical algorithms (`0` = all cores).
#[allow(clippy::too_many_arguments)]
pub fn run_algorithm_threaded(
    workload: &Workload,
    algorithm: Algorithm,
    window: usize,
    minsup: MinSup,
    max_len: Option<usize>,
    backend: StorageBackend,
    threads: usize,
) -> Result<AlgorithmRun> {
    let mut builder = StreamMinerBuilder::new()
        .algorithm(algorithm)
        .window_batches(window)
        .min_support(minsup)
        .backend(backend)
        .threads(threads)
        .catalog(workload.catalog.clone());
    if let Some(max) = max_len {
        builder = builder.max_pattern_len(max);
    }
    let mut miner = builder.build()?;

    let capture_start = Instant::now();
    for batch in &workload.batches {
        miner.ingest_batch(batch)?;
    }
    let capture_time = capture_start.elapsed();

    let result = miner.mine()?;
    let stats = result.stats().clone();
    Ok(AlgorithmRun {
        label: algorithm.key().to_string(),
        capture_time,
        mining_time: stats.elapsed,
        patterns: result.len(),
        patterns_before_postprocess: stats.patterns_before_postprocess,
        peak_mining_bytes: stats.peak_mining_bytes(),
        capture_resident_bytes: stats.capture_resident_bytes,
        capture_on_disk_bytes: stats.capture_on_disk_bytes,
        result,
    })
}

/// Runs the DSTree and DSTable baseline miners over a workload.
pub fn run_baselines_on(
    workload: &Workload,
    window: usize,
    minsup: MinSup,
    max_len: Option<usize>,
) -> Result<Vec<AlgorithmRun>> {
    let limits = match max_len {
        Some(max) => MiningLimits::with_max_len(max),
        None => MiningLimits::UNBOUNDED,
    };
    let window_config = WindowConfig::new(window)?;
    let mut runs = Vec::new();

    // DSTree.
    let mut tree = DsTree::new(DsTreeConfig {
        window: window_config,
    });
    let capture_start = Instant::now();
    for batch in &workload.batches {
        tree.ingest_batch(batch)?;
    }
    let capture_time = capture_start.elapsed();
    let resolved = minsup.resolve(tree.num_transactions());
    let result = mine_dstree(
        &tree,
        &workload.catalog,
        resolved,
        limits,
        ConnectivityMode::Exact,
    )?;
    let stats = result.stats().clone();
    runs.push(AlgorithmRun {
        label: "dstree-baseline".to_string(),
        capture_time,
        mining_time: stats.elapsed,
        patterns: result.len(),
        patterns_before_postprocess: stats.patterns_before_postprocess,
        peak_mining_bytes: stats.peak_mining_bytes(),
        // The DSTree holds the entire window in memory.
        capture_resident_bytes: tree.resident_bytes(),
        capture_on_disk_bytes: 0,
        result,
    });

    // DSTable.
    let mut table = DsTable::new(DsTableConfig {
        window: window_config,
        backend: StorageBackend::DiskTemp,
        expected_edges: workload.catalog.num_edges(),
    })?;
    let capture_start = Instant::now();
    for batch in &workload.batches {
        table.ingest_batch(batch)?;
    }
    let capture_time = capture_start.elapsed();
    let resolved = minsup.resolve(table.num_transactions());
    let resident = table.resident_bytes();
    let on_disk = table.on_disk_bytes();
    let result = mine_dstable(
        &mut table,
        &workload.catalog,
        resolved,
        limits,
        ConnectivityMode::Exact,
    )?;
    let stats = result.stats().clone();
    runs.push(AlgorithmRun {
        label: "dstable-baseline".to_string(),
        capture_time,
        mining_time: stats.elapsed,
        patterns: result.len(),
        patterns_before_postprocess: stats.patterns_before_postprocess,
        peak_mining_bytes: stats.peak_mining_bytes(),
        capture_resident_bytes: resident,
        capture_on_disk_bytes: on_disk,
        result,
    });

    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_and_baseline_runs_agree_on_a_small_workload() {
        let workload = Workload::graph_model(1, 77);
        let minsup = MinSup::relative(0.05);
        let mut results = Vec::new();
        for algorithm in Algorithm::ALL {
            let run = run_algorithm_on(
                &workload,
                algorithm,
                3,
                minsup,
                Some(4),
                StorageBackend::Memory,
            )
            .unwrap();
            assert!(run.patterns > 0, "{algorithm} found nothing");
            results.push(run);
        }
        for pair in results.windows(2) {
            assert!(
                pair[0].result.same_patterns_as(&pair[1].result),
                "{} vs {} disagree",
                pair[0].label,
                pair[1].label
            );
        }
        let baselines = run_baselines_on(&workload, 3, minsup, Some(4)).unwrap();
        assert_eq!(baselines.len(), 2);
        for baseline in &baselines {
            assert!(
                baseline.result.same_patterns_as(&results[0].result),
                "{} disagrees with the DSMatrix algorithms",
                baseline.label
            );
        }
    }
}
