//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! Every experiment binary (one per table/figure of the paper, see
//! `EXPERIMENTS.md`) builds its workloads and runners from this crate so that
//! the same streams and the same measurement conventions are used everywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod workloads;

pub use report::{markdown_table, Row};
pub use runner::{run_algorithm_on, run_algorithm_threaded, run_baselines_on, AlgorithmRun};
pub use workloads::{Workload, WorkloadKind};
