//! Shared harness code for the experiment binaries and Criterion benches.
//!
//! Every experiment binary (one per table/figure of the paper) builds its
//! workloads and runners from this crate so that the same streams and the
//! same measurement conventions are used everywhere:
//!
//! * [`workloads`] — deterministic synthetic streams (graph-model, QUEST,
//!   dense connect4-like) at a given scale, plus their edge catalogs;
//! * [`runner`] — capture + mine one workload with one algorithm or
//!   baseline, returning uniform [`AlgorithmRun`] measurements.
//!   [`run_algorithm_threaded`] exposes the engine's `threads` knob (all
//!   five algorithms honour it; `0` = all cores, results identical for any
//!   worker count);
//! * [`report`] — markdown tables and unit formatting for the binaries.
//!
//! Entry points live in `src/bin/`: `exp1_accuracy` … `exp5_scalability`
//! mirror the paper's experiments, `exp_horizontal_scaling` and the
//! parallel-scaling / slide-cost sections of `exp3_runtime` cover the
//! engine work that goes beyond the paper, and the `ablation_*` binaries
//! isolate individual design decisions.  Criterion-style benches (under
//! `benches/`) give the statistically robust counterparts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod runner;
pub mod workloads;

pub use report::{markdown_table, Row};
pub use runner::{run_algorithm_on, run_algorithm_threaded, run_baselines_on, AlgorithmRun};
pub use workloads::{Workload, WorkloadKind};
