//! Plain-text report helpers (markdown tables and CSV rows).

/// One row of a report table.
pub type Row = Vec<String>;

/// Renders a markdown table with the given header and rows.
pub fn markdown_table(header: &[&str], rows: &[Row]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in header {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

/// Renders rows as CSV with the given header.
pub fn csv(header: &[&str], rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats a byte count with a binary unit suffix.
pub fn human_bytes(bytes: u64) -> String {
    const UNITS: [&str; 4] = ["B", "KiB", "MiB", "GiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.1} {}", UNITS[unit])
    }
}

/// Formats a duration in milliseconds with three decimals.
pub fn millis(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64() * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_table_has_header_separator_and_rows() {
        let table = markdown_table(&["algo", "ms"], &[vec!["vertical".into(), "1.2".into()]]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("algo"));
        assert!(lines[1].contains("---"));
        assert!(lines[2].contains("vertical"));
    }

    #[test]
    fn csv_joins_cells_with_commas() {
        let text = csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(text, "a,b\n1,2\n");
    }

    #[test]
    fn human_bytes_scales_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.0 MiB");
    }

    #[test]
    fn millis_formats_with_three_decimals() {
        assert_eq!(millis(std::time::Duration::from_micros(1500)), "1.500");
    }
}
