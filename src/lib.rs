//! `streaming-fsm` — frequent connected subgraph mining from streams of
//! linked graph structured data.
//!
//! This is the top-level facade crate of the workspace.  It re-exports the
//! public API of every member crate so that applications (and the runnable
//! examples under `examples/`) only need a single dependency.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the full system
//! inventory and the mapping from the paper's experiments to benchmark
//! targets.

#![forbid(unsafe_code)]

pub use fsm_core as core;
pub use fsm_datagen as datagen;
pub use fsm_dsmatrix as dsmatrix;
pub use fsm_dstable as dstable;
pub use fsm_dstree as dstree;
pub use fsm_fptree as fptree;
pub use fsm_linked_data as linked_data;
pub use fsm_storage as storage;
pub use fsm_stream as stream;
pub use fsm_types as types;
