//! Mining an evolving social-interaction stream, the "social or business
//! application" scenario from the paper's introduction: each streamed graph
//! is one burst of interactions (who talked to whom in one session), and the
//! analyst wants the interaction structures that recur across sessions — and
//! how they drift as the window slides.
//!
//! Run with: `cargo run --example social_stream`

use streaming_fsm::core::{Algorithm, StreamMinerBuilder};
use streaming_fsm::datagen::{
    GraphModel, GraphModelConfig, GraphStreamConfig, GraphStreamGenerator, Topology,
};
use streaming_fsm::types::{EdgeSet, MinSup};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scale-free "who-knows-whom" universe: a few hub members concentrate
    // most of the interaction edges, as in real social networks.
    let model = GraphModel::generate(GraphModelConfig {
        num_vertices: 30,
        avg_fanout: 4.0,
        topology: Topology::PreferentialAttachment,
        centrality_skew: 1.2,
        seed: 2026,
    });
    let catalog = model.catalog().clone();
    println!(
        "social universe: {} members, {} possible interaction edges",
        catalog.num_vertices(),
        catalog.num_edges()
    );

    let mut generator = GraphStreamGenerator::new(
        model,
        GraphStreamConfig {
            avg_edges_per_graph: 5.0,
            locality: 0.85, // sessions are bursts among connected members
            batch_size: 400,
            seed: 2026,
        },
    );

    let mut miner = StreamMinerBuilder::new()
        .algorithm(Algorithm::DirectVertical)
        .window_batches(3)
        .min_support(MinSup::relative(0.02))
        .max_pattern_len(4)
        .catalog(catalog.clone())
        .build()?;

    // Stream 8 batches; report after every slide once the window is full so
    // the drift of the frequent structures is visible.
    let mut previous: Option<Vec<EdgeSet>> = None;
    for day in 0..8 {
        let batch = generator.next_batch();
        miner.ingest_batch(&batch)?;
        if day < 2 {
            continue;
        }
        let result = miner.mine()?;
        let current: Vec<EdgeSet> = result
            .patterns()
            .iter()
            .filter(|p| p.len() >= 2)
            .map(|p| p.edges.clone())
            .collect();
        let (new_patterns, vanished) = match &previous {
            Some(prev) => (
                current.iter().filter(|p| !prev.contains(p)).count(),
                prev.iter().filter(|p| !current.contains(p)).count(),
            ),
            None => (current.len(), 0),
        };
        println!(
            "day {day}: window of {} sessions → {} frequent connected structures \
             ({} multi-edge; +{} new, -{} vanished) in {:?}",
            result.stats().window_transactions,
            result.len(),
            current.len(),
            new_patterns,
            vanished,
            result.stats().elapsed,
        );
        previous = Some(current);
    }

    // Show the strongest recurring multi-edge structure of the final window.
    let result = miner.mine()?;
    if let Some(best) = result
        .patterns()
        .iter()
        .filter(|p| p.len() >= 2)
        .max_by_key(|p| (p.support, p.len()))
    {
        let members: Vec<String> = best
            .edges
            .iter()
            .map(|e| {
                let (u, v) = catalog.endpoints(e).expect("known edge");
                format!("{u}~{v}")
            })
            .collect();
        println!(
            "\nmost frequent recurring interaction structure: {} (appears in {} sessions)",
            members.join(", "),
            best.support
        );
    }
    Ok(())
}
