//! Mining a stream of linked data (RDF triples), the scenario that motivates
//! the paper: documents, posts and profiles continuously publishing links to
//! one another.
//!
//! The example parses an N-Triples update log, groups the statements into
//! per-document link graphs, streams them through the miner in two batches
//! and reports which link structures are frequent across documents.
//!
//! Run with: `cargo run --example rdf_stream`

use streaming_fsm::core::{Algorithm, StreamMinerBuilder};
use streaming_fsm::linked_data::{ntriples, GroupingStrategy, TripleStreamAdapter};
use streaming_fsm::types::MinSup;

/// A small update log: each block of statements describes the outgoing links
/// of one document at publication time.
const UPDATE_LOG: &str = "\
# wiki update log (excerpt)
<http://wiki.org/page/alpha> <http://wiki.org/linksTo> <http://wiki.org/page/beta> .
<http://wiki.org/page/alpha> <http://wiki.org/linksTo> <http://wiki.org/page/gamma> .
<http://wiki.org/page/alpha> <http://wiki.org/title> \"Alpha\" .
<http://wiki.org/page/beta> <http://wiki.org/linksTo> <http://wiki.org/page/gamma> .
<http://wiki.org/page/beta> <http://wiki.org/linksTo> <http://wiki.org/page/alpha> .
<http://wiki.org/page/gamma> <http://wiki.org/linksTo> <http://wiki.org/page/alpha> .
<http://wiki.org/page/gamma> <http://wiki.org/linksTo> <http://wiki.org/page/beta> .
<http://wiki.org/page/delta> <http://wiki.org/linksTo> <http://wiki.org/page/alpha> .
<http://wiki.org/page/delta> <http://wiki.org/linksTo> <http://wiki.org/page/beta> .
<http://wiki.org/page/delta> <http://wiki.org/linksTo> <http://wiki.org/page/gamma> .
<http://wiki.org/page/epsilon> <http://wiki.org/linksTo> <http://wiki.org/page/alpha> .
<http://wiki.org/page/epsilon> <http://wiki.org/linksTo> <http://wiki.org/page/beta> .
<http://wiki.org/page/zeta> <http://wiki.org/linksTo> <http://wiki.org/page/alpha> .
<http://wiki.org/page/zeta> <http://wiki.org/linksTo> <http://wiki.org/page/gamma> .
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the linked-data update log.
    let triples = ntriples::parse(UPDATE_LOG)?;
    println!("parsed {} triples", triples.len());

    // 2. Group statements by subject: every document's outgoing links form
    //    one streamed graph, literal attributes are skipped.
    let mut adapter = TripleStreamAdapter::new(GroupingStrategy::BySubject);
    let snapshots = adapter.convert(&triples);
    println!(
        "{} documents produced {} link graphs ({} attribute triples skipped)",
        adapter.dictionary().len(),
        snapshots.len(),
        adapter.skipped_literals()
    );

    // 3. Stream the graphs through the miner in two batches of three.
    let mut miner = StreamMinerBuilder::new()
        .algorithm(Algorithm::DirectVertical)
        .window_batches(2)
        .min_support(MinSup::absolute(2))
        .build()?;
    for chunk in snapshots.chunks(3) {
        miner.ingest_snapshots(chunk)?;
    }

    // 4. The frequent connected link structures across documents.
    let result = miner.mine()?;
    println!("\nfrequent connected link structures (support >= 2 documents):");
    for pattern in result.patterns() {
        let edges: Vec<String> = pattern
            .edges
            .iter()
            .map(|edge| {
                let (u, v) = miner.catalog().endpoints(edge).expect("known edge");
                format!("({u}—{v})")
            })
            .collect();
        println!("  {:<28} support {}", edges.join(" "), pattern.support);
    }
    println!("\n(vertex ids map to resources through the adapter's dictionary; e.g. v1 = first resource interned)");
    Ok(())
}
