//! A faithful walkthrough of the paper's running example (Figure 1,
//! Examples 1–7).
//!
//! The nine graphs over vertices v1..v4 arrive in batches of three with a
//! sliding window of two batches.  The example prints the DSMatrix contents
//! before and after the window slides (Example 1), the 17 collections of
//! frequent edges every post-processing algorithm finds (Examples 2–5), and
//! the 15 connected subgraphs that remain after pruning (Examples 6–7).
//!
//! Run with: `cargo run --example paper_walkthrough`

use streaming_fsm::core::{Algorithm, StreamMinerBuilder};
use streaming_fsm::dsmatrix::{DsMatrix, DsMatrixConfig};
use streaming_fsm::storage::StorageBackend;
use streaming_fsm::stream::WindowConfig;
use streaming_fsm::types::{Batch, EdgeCatalog, EdgeId, GraphSnapshot, MinSup};

fn figure_1_stream() -> Vec<GraphSnapshot> {
    vec![
        GraphSnapshot::from_pairs([(1, 4), (2, 3), (3, 4)]), // E1 = {c,d,f}
        GraphSnapshot::from_pairs([(1, 2), (2, 4), (3, 4)]), // E2 = {a,e,f}
        GraphSnapshot::from_pairs([(1, 2), (1, 4), (3, 4)]), // E3 = {a,c,f}
        GraphSnapshot::from_pairs([(1, 2), (1, 4), (2, 3), (3, 4)]), // E4 = {a,c,d,f}
        GraphSnapshot::from_pairs([(1, 2), (2, 3), (2, 4), (3, 4)]), // E5 = {a,d,e,f}
        GraphSnapshot::from_pairs([(1, 2), (1, 3), (1, 4)]), // E6 = {a,b,c}
        GraphSnapshot::from_pairs([(1, 2), (1, 4), (3, 4)]), // E7 = {a,c,f}
        GraphSnapshot::from_pairs([(1, 2), (1, 4), (2, 3), (3, 4)]), // E8 = {a,c,d,f}
        GraphSnapshot::from_pairs([(1, 3), (1, 4), (2, 3)]), // E9 = {b,c,d}
    ]
}

fn print_matrix(matrix: &mut DsMatrix, label: &str) {
    println!("DSMatrix ({label}):");
    println!("  Boundaries: {:?}", matrix.boundaries());
    for row in 0..matrix.num_items() {
        let edge = EdgeId::new(row as u32);
        let bits = matrix.row(edge).expect("row");
        let rendered: String = (0..bits.len())
            .map(|i| if bits.get(i) { '1' } else { '0' })
            .collect();
        println!("  Row {}: {rendered}", edge.symbol());
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = EdgeCatalog::complete(4);
    let stream = figure_1_stream();

    // ------------------------------------------------------------------
    // Example 1: the DSMatrix before and after the window slides.
    // ------------------------------------------------------------------
    let mut matrix = DsMatrix::new(DsMatrixConfig::new(
        WindowConfig::new(2)?,
        StorageBackend::Memory,
        catalog.num_edges(),
    ))?;
    let mut batches: Vec<Batch> = Vec::new();
    for (i, chunk) in stream.chunks(3).enumerate() {
        let transactions = chunk
            .iter()
            .map(|g| g.to_transaction(&catalog))
            .collect::<Result<Vec<_>, _>>()?;
        batches.push(Batch::from_transactions(i as u64, transactions));
    }
    matrix.ingest_batch(&batches[0])?;
    matrix.ingest_batch(&batches[1])?;
    print_matrix(&mut matrix, "capturing E1–E6, end of time T6");
    matrix.ingest_batch(&batches[2])?;
    print_matrix(&mut matrix, "capturing E4–E9, end of time T9");

    // ------------------------------------------------------------------
    // Examples 2–5: the post-processing algorithms find 17 collections of
    // frequent edges; Examples 6: two of them are disjoint and pruned.
    // ------------------------------------------------------------------
    for algorithm in [Algorithm::Vertical, Algorithm::DirectVertical] {
        let mut miner = StreamMinerBuilder::new()
            .algorithm(algorithm)
            .window_batches(2)
            .min_support(MinSup::absolute(2))
            .catalog(catalog.clone())
            .build()?;
        for batch in &batches {
            miner.ingest_batch(batch)?;
        }
        let result = miner.mine()?;
        println!("=== {algorithm} ===");
        println!(
            "collections before the connectivity filter: {}",
            result.stats().patterns_before_postprocess
        );
        println!("pruned as disjoint: {}", result.stats().patterns_pruned);
        println!("{result}");
    }
    println!("Both algorithms return the same 15 frequent connected subgraphs; the direct algorithm never generates the disjoint {{a,f}} and {{c,d}} in the first place (Example 7).");
    Ok(())
}
