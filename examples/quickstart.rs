//! Quickstart: mine frequent connected subgraphs from a tiny graph stream.
//!
//! Run with: `cargo run --example quickstart`

use streaming_fsm::core::{Algorithm, StreamMinerBuilder};
use streaming_fsm::types::{GraphSnapshot, MinSup};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure the miner: direct vertical mining (the paper's fifth and
    //    fastest algorithm), a sliding window of two batches, and an absolute
    //    minimum support of two graphs.
    let mut miner = StreamMinerBuilder::new()
        .algorithm(Algorithm::DirectVertical)
        .window_batches(2)
        .min_support(MinSup::absolute(2))
        .build()?;

    // 2. Stream graphs in.  Each snapshot is the set of links observed at one
    //    time tick; each call to `ingest_snapshots` forms one batch.
    let batch_1 = vec![
        GraphSnapshot::from_pairs([(1, 2), (2, 3), (3, 4)]),
        GraphSnapshot::from_pairs([(1, 2), (2, 3)]),
        GraphSnapshot::from_pairs([(2, 3), (3, 4), (1, 4)]),
    ];
    let batch_2 = vec![
        GraphSnapshot::from_pairs([(1, 2), (2, 3), (1, 4)]),
        GraphSnapshot::from_pairs([(1, 2), (2, 3), (3, 4)]),
        GraphSnapshot::from_pairs([(1, 4), (3, 4)]),
    ];
    miner.ingest_snapshots(&batch_1)?;
    miner.ingest_snapshots(&batch_2)?;

    // 3. Mine the current window.  Mining is "delayed": nothing happens until
    //    you ask, no matter how many batches streamed past.
    let result = miner.mine()?;

    println!(
        "window: {} transactions",
        result.stats().window_transactions
    );
    println!("{result}");
    println!("mining took {:?}", result.stats().elapsed);
    Ok(())
}
