//! Cross-crate integration tests exercised through the `streaming-fsm`
//! facade: generator → linked-data adapter → capture structures → miners.

use streaming_fsm::core::{oracle, Algorithm, ConnectivityMode, StreamMinerBuilder};
use streaming_fsm::datagen::{
    write_fimi, GraphModel, GraphModelConfig, GraphStreamConfig, GraphStreamGenerator,
    RdfStreamGenerator,
};
use streaming_fsm::linked_data::{ntriples, GroupingStrategy, TripleStreamAdapter};
use streaming_fsm::storage::{StorageBackend, TempDir};
use streaming_fsm::types::{MinSup, Transaction};

fn small_model(seed: u64) -> GraphModel {
    GraphModel::generate(GraphModelConfig {
        num_vertices: 10,
        avg_fanout: 3.0,
        seed,
        ..GraphModelConfig::default()
    })
}

#[test]
fn generated_stream_matches_oracle_through_the_facade() {
    let model = small_model(555);
    let catalog = model.catalog().clone();
    let mut generator = GraphStreamGenerator::new(
        model,
        GraphStreamConfig {
            avg_edges_per_graph: 4.0,
            locality: 0.7,
            batch_size: 25,
            seed: 555,
        },
    );
    let batches = generator.generate_batches(4);

    // Facade run (disk-backed matrix, direct algorithm).
    let mut miner = StreamMinerBuilder::new()
        .algorithm(Algorithm::DirectVertical)
        .window_batches(3)
        .min_support(MinSup::absolute(3))
        .backend(StorageBackend::DiskTemp)
        .catalog(catalog.clone())
        .build()
        .unwrap();
    for batch in &batches {
        miner.ingest_batch(batch).unwrap();
    }
    let result = miner.mine().unwrap();

    // Oracle over the same window (last 3 batches).
    let window: Vec<Transaction> = batches[1..]
        .iter()
        .flat_map(|b| b.transactions().iter().cloned())
        .collect();
    let expected =
        oracle::mine_connected_oracle(&window, &catalog, 3, None, ConnectivityMode::Exact);

    assert_eq!(result.patterns().len(), expected.len());
    for pattern in expected {
        assert_eq!(
            result.support_of(&pattern.edges),
            Some(pattern.support),
            "pattern {} support mismatch",
            pattern.edges
        );
    }
}

#[test]
fn rdf_round_trip_from_triples_to_patterns() {
    // Generate a synthetic RDF stream, serialise it to N-Triples, re-parse it,
    // adapt it to graph snapshots and mine — the full linked-data pipeline.
    let model = small_model(808);
    let mut rdf = RdfStreamGenerator::new(
        model,
        GraphStreamConfig {
            avg_edges_per_graph: 3.0,
            locality: 0.8,
            batch_size: 10,
            seed: 808,
        },
        "http://example.org",
        0.2,
    );
    let triples = rdf.generate_triples(60);
    let document = ntriples::serialize(&triples);
    let reparsed = ntriples::parse(&document).unwrap();
    assert_eq!(reparsed.len(), triples.len());

    let mut adapter = TripleStreamAdapter::new(GroupingStrategy::FixedSize(4));
    let snapshots = adapter.convert(&reparsed);
    assert!(!snapshots.is_empty());

    let mut miner = StreamMinerBuilder::new()
        .algorithm(Algorithm::Vertical)
        .window_batches(4)
        .min_support(MinSup::relative(0.05))
        .build()
        .unwrap();
    for chunk in snapshots.chunks(10) {
        miner.ingest_snapshots(chunk).unwrap();
    }
    let result = miner.mine().unwrap();
    assert!(
        !result.is_empty(),
        "the RDF stream should contain frequent links"
    );
    // Every reported pattern is connected.
    for pattern in result.patterns() {
        assert!(pattern.edges.is_connected(miner.catalog()));
    }
}

#[test]
fn window_slide_forgets_old_behaviour() {
    // Edges seen only in early batches must disappear from the results once
    // the window slides past them.
    let mut miner = StreamMinerBuilder::new()
        .algorithm(Algorithm::DirectVertical)
        .window_batches(2)
        .min_support(MinSup::absolute(2))
        .build()
        .unwrap();

    use streaming_fsm::types::GraphSnapshot;
    let early = vec![
        GraphSnapshot::from_pairs([(1, 2), (2, 3)]),
        GraphSnapshot::from_pairs([(1, 2), (2, 3)]),
    ];
    let later = vec![
        GraphSnapshot::from_pairs([(5, 6), (6, 7)]),
        GraphSnapshot::from_pairs([(5, 6), (6, 7)]),
    ];
    miner.ingest_snapshots(&early).unwrap();
    let first = miner.mine().unwrap();
    assert!(first.len() >= 3, "early patterns present");

    miner.ingest_snapshots(&later).unwrap();
    miner.ingest_snapshots(&later).unwrap();
    let second = miner.mine().unwrap();
    // The early edges (ids 0 and 1) are out of the window now.
    use streaming_fsm::types::EdgeSet;
    assert_eq!(second.support_of(&EdgeSet::from_raw([0])), None);
    assert!(second.support_of(&EdgeSet::from_raw([2])).is_some());
}

#[test]
fn fimi_export_of_a_generated_stream_is_readable() {
    let model = small_model(99);
    let mut generator = GraphStreamGenerator::new(
        model,
        GraphStreamConfig {
            avg_edges_per_graph: 4.0,
            locality: 0.5,
            batch_size: 20,
            seed: 99,
        },
    );
    let batch = generator.next_batch();
    let dir = TempDir::new("e2e-fimi").unwrap();
    let path = dir.file("stream.dat");
    write_fimi(&path, batch.transactions()).unwrap();
    let back = streaming_fsm::datagen::read_fimi(&path).unwrap();
    let non_empty = batch
        .transactions()
        .iter()
        .filter(|t| !t.is_empty())
        .count();
    assert_eq!(back.len(), non_empty);
}
